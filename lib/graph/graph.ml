open Pypm_term
open Pypm_tensor

type node = {
  id : int;
  mutable op : Symbol.t;
  mutable inputs : node list;
  mutable attrs : (string * int) list;
  mutable ty : Ty.t option;
}

type t = {
  sg : Signature.t;
  infer : Infer.t;
  table : (int, node) Hashtbl.t;
  mutable order : int list; (* reverse creation order *)
  mutable outs : node list;
  mutable next_id : int;
  (* Mutation journal: undo thunks for every mutation performed while a
     transaction is open (LIFO). Empty and untouched outside transactions,
     so the non-transactional paths pay one [journal_depth] check. *)
  mutable journal : (unit -> unit) list;
  mutable journal_len : int;
  mutable journal_depth : int;
}

let create ~sg ~infer () =
  {
    sg;
    infer;
    table = Hashtbl.create 256;
    order = [];
    outs = [];
    next_id = 0;
    journal = [];
    journal_len = 0;
    journal_depth = 0;
  }

let journal_push g undo =
  if g.journal_depth > 0 then (
    g.journal <- undo :: g.journal;
    g.journal_len <- g.journal_len + 1)

let signature g = g.sg
let inference g = g.infer

let alloc g op inputs attrs ty =
  let n = { id = g.next_id; op; inputs; attrs; ty } in
  g.next_id <- g.next_id + 1;
  Hashtbl.replace g.table n.id n;
  g.order <- n.id :: g.order;
  (* Undo: drop the node. [next_id] is deliberately not restored, so node
     ids are never reused across a rollback — events and provenance that
     captured an id during the attempt can never alias a later node. *)
  journal_push g (fun () ->
      Hashtbl.remove g.table n.id;
      g.order <- List.filter (fun id -> id <> n.id) g.order);
  n

let leaf_with_class g ~name ~cls ty =
  let sym = Symbol.fresh ~prefix:name () in
  ignore (Signature.declare g.sg ~arity:0 ~op_class:cls sym);
  alloc g sym [] [] (Some ty)

let input g ~name ty = leaf_with_class g ~name ~cls:"input" ty
let opaque g ~name ty = leaf_with_class g ~name ~cls:"opaque" ty

let add g op ?(attrs = []) inputs =
  (match Signature.arity g.sg op with
  | None -> invalid_arg (Printf.sprintf "Graph.add: undeclared operator %s" op)
  | Some n ->
      if n <> List.length inputs then
        invalid_arg
          (Printf.sprintf "Graph.add: %s has arity %d, got %d inputs" op n
             (List.length inputs)));
  let ty =
    if Infer.mem g.infer op then
      let in_tys = List.map (fun n -> n.ty) inputs in
      if List.exists Option.is_none in_tys then None
      else
        match
          Infer.infer g.infer op ~attrs (List.map Option.get in_tys)
        with
        | Ok ty -> Some ty
        | Error msg ->
            invalid_arg (Printf.sprintf "Graph.add: %s: %s" op msg)
    else None
  in
  alloc g op inputs attrs ty

let add_with_ty g op ?(attrs = []) ~ty inputs =
  (match Signature.arity g.sg op with
  | None ->
      invalid_arg (Printf.sprintf "Graph.add_with_ty: undeclared operator %s" op)
  | Some n ->
      if n <> List.length inputs then
        invalid_arg
          (Printf.sprintf "Graph.add_with_ty: %s has arity %d, got %d inputs"
             op n (List.length inputs)));
  alloc g op inputs attrs (Some ty)

let const_scale = 1000.

let stored_of_value value = int_of_float (Float.round (value *. const_scale))

let lit_symbol ?(dtype = Dtype.F32) value =
  Printf.sprintf "lit_%s_%d" (Dtype.to_string dtype) (stored_of_value value)

let declare_lit sg ?(dtype = Dtype.F32) value =
  let sym = lit_symbol ~dtype value in
  ignore (Signature.declare sg ~arity:0 ~op_class:"const" sym);
  sym

let constant g ?(dtype = Dtype.F32) value =
  let sym = declare_lit g.sg ~dtype value in
  alloc g sym [] [ ("value_x1000", stored_of_value value) ] (Some (Ty.scalar dtype))

let constant_value n =
  match List.assoc_opt "value_x1000" n.attrs with
  | Some v -> Some (float_of_int v /. const_scale)
  | None -> None

let set_outputs g outs =
  let old = g.outs in
  journal_push g (fun () -> g.outs <- old);
  g.outs <- outs
let outputs g = g.outs
let find_node g id = Hashtbl.find_opt g.table id
let nodes g = List.rev_map (fun id -> Hashtbl.find g.table id) g.order
let node_count g = Hashtbl.length g.table

(* Topological order via DFS from outputs; inputs first. *)
let live_nodes g =
  let visited = Hashtbl.create 256 in
  let out = ref [] in
  let rec visit n =
    if not (Hashtbl.mem visited n.id) then (
      Hashtbl.replace visited n.id ();
      List.iter visit n.inputs;
      out := n :: !out)
  in
  List.iter visit g.outs;
  List.rev !out

let live_count g = List.length (live_nodes g)

let users g n =
  List.filter (fun m -> List.exists (fun i -> i.id = n.id) m.inputs)
    (live_nodes g)

(* Is [candidate] reachable from [from] following inputs? *)
let reaches from candidate =
  let visited = Hashtbl.create 64 in
  let rec go n =
    n.id = candidate.id
    || (not (Hashtbl.mem visited n.id))
       && (Hashtbl.replace visited n.id ();
           List.exists go n.inputs)
  in
  go from

let try_replace g ~old_root ~new_root =
  if old_root.id = new_root.id then Ok ()
  else
    (* Cycle guard: if some live user of old_root is reachable from
       new_root, rewiring would close a loop. Only live users are rewired:
       dead nodes keep their stale inputs until the next gc, and rewiring
       (or cycle-checking against) them would resurrect edges no live
       computation observes. *)
    let user_list =
      List.filter
        (fun m -> List.exists (fun i -> i.id = old_root.id) m.inputs)
        (live_nodes g)
    in
    if List.exists (fun u -> reaches new_root u) user_list then Error `Cycle
    else (
      List.iter
        (fun u ->
          let old_inputs = u.inputs in
          journal_push g (fun () -> u.inputs <- old_inputs);
          u.inputs <-
            List.map
              (fun i -> if i.id = old_root.id then new_root else i)
              u.inputs)
        user_list;
      let old_outs = g.outs in
      journal_push g (fun () -> g.outs <- old_outs);
      g.outs <-
        List.map (fun o -> if o.id = old_root.id then new_root else o) g.outs;
      Pypm_obs.Obs.emit ~node:old_root.id
        (Pypm_obs.Obs.Replace { old_root = old_root.id; new_root = new_root.id });
      Ok ())

let replace g ~old_root ~new_root =
  match try_replace g ~old_root ~new_root with
  | Ok () -> ()
  | Error `Cycle -> invalid_arg "Graph.replace: rewiring would create a cycle"

(* Raw input surgery, bypassing every invariant. Exists so tests (and
   debugging sessions) can manufacture broken graphs for [validate]. *)
let unsafe_set_inputs (n : node) inputs = n.inputs <- inputs

let gc g =
  if g.journal_depth > 0 then
    invalid_arg "Graph.gc: cannot collect inside an open transaction";
  let live = live_nodes g in
  let keep = Hashtbl.create 256 in
  List.iter (fun n -> Hashtbl.replace keep n.id ()) live;
  let before = Hashtbl.length g.table in
  Hashtbl.iter
    (fun id _ -> if not (Hashtbl.mem keep id) then Hashtbl.remove g.table id)
    (Hashtbl.copy g.table);
  g.order <- List.filter (fun id -> Hashtbl.mem keep id) g.order;
  let collected = before - Hashtbl.length g.table in
  if collected > 0 then Pypm_obs.Obs.emit (Pypm_obs.Obs.Gc { collected });
  collected

let count_op g op =
  List.length (List.filter (fun n -> Symbol.equal n.op op) (live_nodes g))

let count_class g cls =
  List.length
    (List.filter
       (fun n ->
         match Signature.op_class g.sg n.op with
         | Some c -> String.equal c cls
         | None -> false)
       (live_nodes g))

let validate g =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  let live = live_nodes g in
  List.iter
    (fun n ->
      (match Signature.arity g.sg n.op with
      | None -> err "node %d: undeclared operator %s" n.id n.op
      | Some a ->
          if a <> List.length n.inputs then
            err "node %d: operator %s arity %d but %d inputs" n.id n.op a
              (List.length n.inputs));
      List.iter
        (fun i ->
          if not (Hashtbl.mem g.table i.id) then
            err "node %d: input %d not in node table" n.id i.id)
        n.inputs;
      (* [reaches n n] is vacuously true (a node trivially reaches itself),
         so the real cycle test is whether [n] is reachable from one of its
         own inputs. *)
      if List.exists (fun i -> reaches i n) n.inputs then
        err "node %d: participates in a cycle" n.id)
    live;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

module Txn = struct
  type savepoint = { mark : int; at_depth : int }

  let begin_ g =
    g.journal_depth <- g.journal_depth + 1;
    { mark = g.journal_len; at_depth = g.journal_depth }

  let check g sp what =
    if g.journal_depth <> sp.at_depth then
      invalid_arg
        (Printf.sprintf
           "Graph.Txn.%s: savepoint depth %d but transaction depth is %d \
            (commit/rollback must nest LIFO)"
           what sp.at_depth g.journal_depth)

  let close g =
    g.journal_depth <- g.journal_depth - 1;
    if g.journal_depth = 0 then (
      g.journal <- [];
      g.journal_len <- 0)

  let commit g sp =
    check g sp "commit";
    close g

  let rollback g sp =
    check g sp "rollback";
    let undone = ref 0 in
    while g.journal_len > sp.mark do
      match g.journal with
      | [] -> assert false
      | undo :: rest ->
          undo ();
          g.journal <- rest;
          g.journal_len <- g.journal_len - 1;
          incr undone
    done;
    close g;
    !undone

  let active g = g.journal_depth > 0
  let depth g = g.journal_depth
end

let pp_node ppf n =
  Format.fprintf ppf "%%%d = %s(%a)%a" n.id n.op
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf i -> Format.fprintf ppf "%%%d" i.id))
    n.inputs
    (fun ppf -> function
      | Some ty -> Format.fprintf ppf " : %a" Ty.pp ty
      | None -> Format.fprintf ppf " : opaque")
    n.ty

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  List.iter (fun n -> Format.fprintf ppf "%a@," pp_node n) (live_nodes g);
  Format.fprintf ppf "outputs: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf o -> Format.fprintf ppf "%%%d" o.id))
    g.outs
