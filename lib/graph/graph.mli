(** The computation-graph IR.

    This is the repository's stand-in for DLCB's operator graphs: a mutable
    DAG of operator nodes over a signature, with tensor types computed by
    shape inference at construction time. Rewriting is {e destructive}
    (paper, section 2): {!replace} rewires every user of the matched root to
    the replacement node and the old subgraph becomes garbage, collected by
    {!gc}.

    Invariants maintained (and checked by {!validate}):
    - inputs of a node were created before it in the same graph (acyclic);
    - arities agree with the signature;
    - every node reachable from an output is in the node table. *)

open Pypm_term
open Pypm_tensor

type node = private {
  id : int;
  mutable op : Symbol.t;
  mutable inputs : node list;
  mutable attrs : (string * int) list;
  mutable ty : Ty.t option;  (** [None] = opaque to the type system *)
}

type t

(** [create ~sg ~infer ()] makes an empty graph. The signature and inference
    registry are {e not} copied; several graphs may share them. *)
val create : sg:Signature.t -> infer:Infer.t -> unit -> t

val signature : t -> Signature.t
val inference : t -> Infer.t

(** [input g ~name ty] creates a graph input: an arity-0 leaf with a fresh
    operator symbol derived from [name], declared in the signature with
    class ["input"]. *)
val input : t -> name:string -> Ty.t -> node

(** [opaque g ~name ty] creates a leaf standing for a subgraph DLCB does not
    understand (class ["opaque"]); it has a type but no structure. *)
val opaque : t -> name:string -> Ty.t -> node

(** [add g op ?attrs inputs] creates an operator node. Arity is checked
    against the signature; the type is computed by the inference registry.
    Raises [Invalid_argument] if the operator is declared but its typing
    rule rejects the inputs (a construction bug); an operator with no
    typing rule gets [ty = None]. *)
val add : t -> Symbol.t -> ?attrs:(string * int) list -> node list -> node

(** [add_with_ty g op ~ty inputs] creates a node with an explicitly supplied
    type, bypassing inference. Used for just-in-time fused region operators
    whose type is the type of the subgraph they replace. The operator must
    be declared with the right arity. *)
val add_with_ty :
  t -> Symbol.t -> ?attrs:(string * int) list -> ty:Ty.t -> node list -> node

(** [constant g ?dtype value] is a scalar constant leaf (class ["const"]).
    The float [value] is stored as the attribute ["value_x1000"], rounded to
    the nearest thousandth; PyPM constants like 0.5 and 2 in figure 2 are
    represented this way. Constant leaves with the same dtype and value
    share an {e interned} operator symbol ({!lit_symbol}), so patterns can
    match specific literals structurally. *)
val constant : t -> ?dtype:Dtype.t -> float -> node

(** [constant_value node] recovers the value of a constant node. *)
val constant_value : node -> float option

(** The interned operator symbol of the constant [value] at [dtype]
    (default [F32]); use it to write literal patterns such as
    [Div(x, 2)] as [App (lit_symbol 2.0, [])]. *)
val lit_symbol : ?dtype:Dtype.t -> float -> Symbol.t

(** Declare a literal's symbol in a signature without building a graph, so
    pattern well-formedness checks know it. Idempotent. *)
val declare_lit : Signature.t -> ?dtype:Dtype.t -> float -> Symbol.t

val set_outputs : t -> node list -> unit
val outputs : t -> node list
val find_node : t -> int -> node option

(** All nodes in creation order (including garbage until {!gc} runs). *)
val nodes : t -> node list

(** Nodes reachable from the outputs, in topological order (inputs before
    users). *)
val live_nodes : t -> node list

val node_count : t -> int
val live_count : t -> int

(** [users g n] lists the live nodes that take [n] as an input. *)
val users : t -> node -> node list

(** [replace g ~old_root ~new_root] destructively replaces [old_root]:
    every user of [old_root] now reads [new_root], and outputs are updated.
    Raises [Invalid_argument] if [new_root] would create a cycle (it is a
    strict ancestor of itself through [old_root]'s users). *)
val replace : t -> old_root:node -> new_root:node -> unit

(** Non-raising {!replace}: [Error `Cycle] when rewiring would close a
    loop, with the graph untouched — the rewrite engine counts this as a
    rejected firing and rolls the attempt back instead of dying mid-pass. *)
val try_replace :
  t -> old_root:node -> new_root:node -> (unit, [ `Cycle ]) result

(** Drop unreachable nodes from the node table; returns how many were
    collected. Raises [Invalid_argument] inside an open transaction: the
    journal could not undo a collection. *)
val gc : t -> int

(** {2 Transactions}

    A mutation journal over the graph: every node allocation, input
    rewiring, and output update performed while a transaction is open is
    recorded as an undo thunk. {!Txn.rollback} restores the graph to its
    state at {!Txn.begin_} — the mechanism behind all-or-nothing rule
    firing in the rewrite pass. Transactions nest LIFO via savepoints
    (an inner [begin_]/[rollback] undoes only the inner mutations; an
    outer [rollback] undoes committed inner work too). Outside any
    transaction the journal records nothing and costs one integer check
    per mutation.

    Node ids are {e not} reused after a rollback: [next_id] keeps
    advancing, so an id captured by an event during a rolled-back attempt
    can never alias a later node. *)

module Txn : sig
  type savepoint

  (** Open a (possibly nested) transaction; mutations are journaled until
      the matching {!commit} or {!rollback}. *)
  val begin_ : t -> savepoint

  (** Keep the mutations since the savepoint. Raises [Invalid_argument]
      on non-LIFO commit order. *)
  val commit : t -> savepoint -> unit

  (** Undo every mutation since the savepoint, most recent first; returns
      how many were undone. Raises [Invalid_argument] on non-LIFO order. *)
  val rollback : t -> savepoint -> int

  (** Is any transaction open? *)
  val active : t -> bool

  val depth : t -> int
end

(** [count_op g op] counts live nodes with operator [op]. *)
val count_op : t -> Symbol.t -> int

(** [count_class g cls] counts live nodes whose operator class is [cls]. *)
val count_class : t -> string -> int

(** Structural integrity check; returns human-readable violations. *)
val validate : t -> string list

(** [unsafe_set_inputs n inputs] rewires [n]'s inputs with {e no} arity,
    declaration, or acyclicity checks — it can corrupt the graph. Intended
    for tests that manufacture invalid graphs to exercise {!validate}. *)
val unsafe_set_inputs : node -> node list -> unit

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
