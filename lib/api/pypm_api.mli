(** The stable embedding surface.

    Everything an embedder needs, in pipeline order — the same path the
    [pypmc] driver and the serve layer walk:

    {v
      source text --parse--> Program.t --lint--> diagnostics
                                  |
                              prepare (Config)
                                  |
                               prepared --run--> stats --stats_json--> JSON
    v}

    The rest of the tree ({!Pypm_engine.Pass}, {!Pypm_analysis.Analysis},
    {!Pypm_surface.Surface}, ...) is reachable and public, but this module
    is the surface we keep stable: new capability arrives as new
    {!Config} fields with defaults, not as new positional or optional
    arguments on these functions.

    Quick start:

    {[
      let env = Pypm_api.env () in
      let prog = Result.get_ok (Pypm_api.parse ~sg:env.sg src) in
      match Pypm_api.lint prog with
      | _ :: _ as ds -> List.iter print_diagnostic ds
      | [] ->
          let config = { Pypm_api.Config.default with engine = Some Plan } in
          let prepared = Pypm_api.prepare ~config prog in
          let stats = Pypm_api.run ~config prepared graph in
          print_string (Pypm_api.stats_json stats)
    ]} *)

open Pypm_term
module Program = Pypm_engine.Program
module Pass = Pypm_engine.Pass
module Analysis = Pypm_analysis.Analysis

(** One knob record for the whole pass family
    ({!Pypm_engine.Pass.Config}). *)
module Config = Pypm_engine.Pass.Config

(** A fresh copy of the standard tensor-operator environment: the
    signature every built-in corpus program and zoo model is defined
    over, plus its type-inference rules. *)
val env : unit -> Pypm_patterns.Std_ops.env

(** [parse ~sg src] elaborates pattern source text into a core program
    over [sg] (extending it with the source's own [op] declarations).
    Errors are rendered with their source position. *)
val parse : sg:Signature.t -> string -> (Program.t, string) result

(** [load ~sg path] reads a [.pypm] source file or a [.bin] serialized
    pattern binary, by extension. *)
val load : sg:Signature.t -> string -> (Program.t, string) result

(** [lint ?overlaps prog] is {!Pypm_analysis.Analysis.lint}: dead
    patterns, shadowed alternates, subsumed and overlapping patterns,
    unsatisfiable guards. Error-severity findings are what
    {!Program.make}[ ~lint] and the serve layer's admission reject. *)
val lint : ?overlaps:bool -> Program.t -> Analysis.diagnostic list

(** [prepare ?config prog] compiles the program once for repeated
    {!run}s: head index or shared matching plan, per [config.engine]. *)
val prepare : ?config:Config.t -> Program.t -> Pass.prepared

(** [run ?config prepared g] rewrites [g] in place to a fixpoint and
    reports statistics. Same [config] as {!prepare} — the prepared
    engine wins if they disagree. *)
val run : ?config:Config.t -> Pass.prepared -> Pypm_graph.Graph.t -> Pass.stats

(** One-shot {!prepare} + {!run}. *)
val optimize :
  ?config:Config.t -> Program.t -> Pypm_graph.Graph.t -> Pass.stats

(** Machine-readable pass statistics, including the effective config
    block ([engine_requested]/[engine_used], fuel, domains, ...). *)
val stats_json : Pass.stats -> string
