module Program = Pypm_engine.Program
module Pass = Pypm_engine.Pass
module Analysis = Pypm_analysis.Analysis
module Config = Pypm_engine.Pass.Config

let env () = Pypm_patterns.Std_ops.make ()

let parse ~sg src =
  match Pypm_surface.Surface.load ~sg src with
  | Ok p -> Ok p
  | Error e -> Error (Format.asprintf "%a" Pypm_surface.Surface.pp_error e)

let load ~sg path =
  if Filename.check_suffix path ".bin" then
    let ic = open_in_bin path in
    let bytes =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Pypm_serialize.Codec.decode_into ~sg bytes
  else
    match Pypm_surface.Surface.load_file ~sg path with
    | Ok p -> Ok p
    | Error e -> Error (Format.asprintf "%a" Pypm_surface.Surface.pp_error e)

let lint ?overlaps prog = Analysis.lint ?overlaps prog
let prepare ?config prog = Pass.prepare_cfg ?config prog
let run ?config prepared g = Pass.run_prepared_cfg ?config prepared g
let optimize ?config prog g = Pass.run_cfg ?config prog g
let stats_json = Pass.stats_json
