(** Structured observability for the whole engine.

    Every layer of the matcher stack — the backtracking matcher, the shared
    plan, the rewrite pass, the graph — emits {e typed events} through this
    module: match attempts with their outcome and duration, prunes, fuel
    exhaustion, guard and type rejections, rule firings, replacements, GC.
    This is the substrate the evaluation (figures 12/13) and every future
    performance PR measures against, in the spirit of TVM's pass
    instruments and MLIR's [-mlir-timing]/action tracing.

    Three sinks consume events:

    - a {e ring buffer}, always on and cheap — the last few thousand events
      are always available for post-mortem inspection ({!recent});
    - attachable sinks ({!add_sink}/{!with_sink}), used by the {!Collector}
      (full event capture for {!Chrome} trace export) and the {!Agg}
      per-pattern counter/histogram aggregator that the pass's statistics
      are computed from;
    - the {!Chrome} writer, which renders captured events as Chrome
      trace-event JSON loadable in [chrome://tracing] or
      {{:https://ui.perfetto.dev}Perfetto}.

    The module is dependency-free (stdlib + unix for the clock) so every
    library in the tree can emit without layering concerns. *)

(** Outcome of one matcher invocation, mirrored from
    [Pypm_semantics.Outcome] to keep this library at the bottom of the
    dependency order. *)
type outcome = Matched | No_match | Stuck | Out_of_fuel

(** What rejected a pattern at a node without running the matcher. *)
type prune = Head_index | Plan_trie

type kind =
  | Match_attempt of { pattern : string; outcome : outcome; visits : int }
      (** the backtracking matcher ran; [visits] = pattern nodes spent *)
  | Pruned of { pattern : string; via : prune }
  | Fuel_exhausted of { pattern : string; fuel : int }
      (** a match attempt hit its fuel bound — {b not} a clean no-match *)
  | Matcher_fuel of { visits : int }
      (** emitted by the matcher itself at the exhaustion site *)
  | Guard_reject of { pattern : string; rule : string }
  | Type_reject of { pattern : string; rule : string }
  | Rule_fired of { pattern : string; rule : string; replacement : int }
  | Plan_walk of { steps : int; hits : int }
      (** one shared-trie walk over one node *)
  | Plan_match of { pattern : string }
      (** the shared trie reported a witness for a compiled pattern — the
          backtracking matcher never ran *)
  | Replace of { old_root : int; new_root : int }
  | Gc of { collected : int }
  | Iteration of { n : int }
  | Pass_begin of { engine : string; patterns : int }
  | Pass_end of { rewrites : int; iterations : int }
  | Rolled_back of {
      pattern : string;
      rule : string;
      reason : string;
      undone : int;  (** graph mutations undone by the journal *)
    }
      (** a firing attempt failed partway and the transaction journal
          restored the pre-attempt graph *)
  | Cycle_rejected of { pattern : string; rule : string }
      (** the replacement would have closed a cycle; the firing was rolled
          back instead of raising *)
  | Quarantined of { pattern : string; strikes : int }
      (** the per-pattern circuit breaker tripped: this pattern is skipped
          for the remainder of the pass *)
  | Engine_degraded of { from_ : string; to_ : string; reason : string }
      (** the degradation ladder fell back to a simpler matching engine *)
  | Fault_injected of { point : string }
      (** a deterministic fault-injection point fired (testing only) *)
  | Deadline_hit of { budget_s : float }
      (** the pass stopped at its wall-clock budget with partial stats *)
  | Cache_hit of { key : string }
      (** the serve result cache answered a request without running a pass *)
  | Cache_miss of { key : string }
  | Cache_evicted of { key : string; bytes : int }
      (** LRU eviction to stay under the cache's byte bound *)
  | Request_served of { id : int; cached : bool }
  | Request_shed of { id : int }
      (** admission control rejected the request (queue at bound) *)
  | Worker_restarted of { worker : int; restarts : int }
      (** the pool supervisor replaced a crashed worker domain;
          [restarts] is the pool-lifetime restart count after this one *)
  | Job_poisoned of { id : int }
      (** a request crashed two workers in a row and was quarantined
          with a structured [Worker_crashed] response instead of retried *)
  | Shard_dispatch of { domains : int; candidates : int }
      (** the sharded pass split [candidates] worklist nodes across
          [domains] domains for one matching round *)
  | Shard_matched of { domain : int; nodes : int; witnesses : int }
      (** one shard finished its read-only matching slice; [dur] is the
          shard's wall time inside the round *)
  | Shard_merged of { fired : int; replayed : int; discarded : int }
      (** the arbiter consumed a round: [fired] rules applied, [replayed]
          witnesses inspected, [discarded] speculative witnesses dropped
          (beyond the first fire or quarantined at consumption) *)
  | Sat_iteration of { n : int; classes : int; nodes : int }
      (** an equality-saturation round is starting: 1-based round number
          and the e-graph's class/node counts at that point *)
  | Sat_union of { rule : string }
      (** a saturation rewrite added one equality (a union) *)
  | Sat_extract of {
      output : int;
      before_cost : float;
      after_cost : float;
      accepted : bool;
    }
      (** cost-guided extraction proposed a splice for the graph output
          [output]; [accepted] iff the transactional splice committed
          (it only does when the whole-graph cost strictly improves) *)

type event = {
  ts : float;  (** absolute seconds (Unix epoch) at emission *)
  dur : float;  (** seconds covered by the event; 0 for instants *)
  node : int;  (** graph node id, or -1 when not node-scoped *)
  kind : kind;
}

(** {1 Emission} *)

val emit : ?node:int -> ?dur:float -> kind -> unit

(** [replay events] delivers already-stamped events (captured on another
    domain, e.g. by a shard worker's {!Collector}) to {e this} domain's
    ring and sinks, preserving their original timestamps and order. *)
val replay : event list -> unit

(** The clock events are stamped with; defaults to [Unix.gettimeofday].
    Replaceable for deterministic tests. Use for {e timestamps} only —
    wall time can jump backwards. *)
val set_clock : (unit -> float) -> unit

val now : unit -> float

(** Monotonic clock for measuring {e durations} and deadlines: seconds
    from an arbitrary origin, never decreasing. Backed by
    [clock_gettime(CLOCK_MONOTONIC)] (wall-clock fallback on platforms
    without it). Not comparable with {!now}. *)
val monotonic : unit -> float

(** Replace {!monotonic} for deterministic tests. *)
val set_monotonic_clock : (unit -> float) -> unit

(** {1 The ring buffer (always on)}

    The ring and the attachable sinks below are {e domain-local}: each
    OCaml domain (e.g. a serve worker) observes only its own events, so
    concurrent passes never interleave their streams. *)

(** Most recent events, oldest first. [limit] caps the result length. *)
val recent : ?limit:int -> unit -> event list

val ring_reset : unit -> unit

(** Resize the ring (default 4096 events); drops current contents. *)
val set_ring_capacity : int -> unit

(** {1 Attachable sinks} *)

type sink = event -> unit

(** [add_sink s] attaches [s]; returns the detach function. *)
val add_sink : sink -> unit -> unit

(** [with_sink s f] runs [f] with [s] attached, detaching on exit even on
    exceptions. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** {1 Event capture} *)

module Collector : sig
  type t

  val create : unit -> t
  val sink : t -> sink

  (** Captured events in emission order. *)
  val events : t -> event list

  val length : t -> int
  val clear : t -> unit
end

(** {1 Per-pattern aggregation}

    The event-driven replacement for ad-hoc mutable counters: attach
    [Agg.sink] for the duration of a pass and read totals and a log2
    duration histogram per pattern afterwards. *)

module Agg : sig
  type pat = {
    mutable attempts : int;
    mutable pruned_head : int;
    mutable pruned_plan : int;
    mutable matches : int;
    mutable rewrites : int;
    mutable fuel_exhausted : int;
    mutable guard_rejects : int;
    mutable type_rejects : int;
    mutable rolled_back : int;
        (** firing attempts undone by the transaction journal *)
    mutable cycle_rejects : int;
        (** firings rejected because the replacement would close a cycle *)
    mutable match_time : float;  (** seconds inside the matcher *)
    hist : int array;
        (** histogram of match-attempt durations; bucket [i] counts
            attempts in [[2^(i-1), 2^i)] microseconds, bucket 0 is < 1 µs *)
  }

  type t

  val create : unit -> t
  val sink : t -> sink
  val find : t -> string -> pat option

  (** All patterns seen, in first-event order. *)
  val patterns : t -> (string * pat) list

  val pp : Format.formatter -> t -> unit
end

(** {1 Rewrite provenance}

    The ordered record of what the pass did to the graph: one step per
    fired rule, replayable as a human-readable narrative ([pypmc trace]). *)

module Provenance : sig
  type step = {
    seq : int;  (** 0-based firing order *)
    pattern : string;
    rule : string;
    matched_root : int;  (** graph node id the pattern matched at *)
    matched_op : string;
    replacement_root : int;  (** node id of the replacement *)
    replacement_op : string;
    theta_dom : string list;  (** variables bound by the witness *)
    phi_dom : string list;  (** function variables bound *)
  }

  val pp_step : Format.formatter -> step -> unit

  (** The full narrative, one line per step. *)
  val pp : Format.formatter -> step list -> unit
end

(** {1 Chrome trace-event export} *)

module Chrome : sig
  (** [to_string events] renders a Chrome trace-event JSON object
      ([{"traceEvents": [...], ...}]); events with a duration become
      complete ("ph":"X") slices, instants become "ph":"i". Timestamps are
      microseconds relative to the earliest event. *)
  val to_string : event list -> string

  val write : string -> event list -> unit
end

(** {1 Pretty-printing} *)

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit

(** Escape a string for embedding in a JSON string literal (used by the
    Chrome writer; exported for other JSON emitters in the tree). *)
val json_escape : string -> string
