/* Monotonic clock for duration measurement.
 *
 * OCaml 5.1's bundled Unix library exposes no clock_gettime binding, and
 * the tree takes no external packages, so the one POSIX call is bound
 * here. CLOCK_MONOTONIC never jumps backwards under NTP slew or manual
 * clock changes, which gettimeofday (the trace-timestamp clock) can. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

#include <time.h>
#include <sys/time.h>

CAMLprim value pypm_obs_monotonic_s(value unit)
{
  CAMLparam1(unit);
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    CAMLreturn(caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9));
#endif
  /* Fallback for platforms without CLOCK_MONOTONIC: wall clock. Worse
   * (not monotonic) but never wrong by more than the wall clock is. */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    CAMLreturn(caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6));
  }
}
