type outcome = Matched | No_match | Stuck | Out_of_fuel
type prune = Head_index | Plan_trie

type kind =
  | Match_attempt of { pattern : string; outcome : outcome; visits : int }
  | Pruned of { pattern : string; via : prune }
  | Fuel_exhausted of { pattern : string; fuel : int }
  | Matcher_fuel of { visits : int }
  | Guard_reject of { pattern : string; rule : string }
  | Type_reject of { pattern : string; rule : string }
  | Rule_fired of { pattern : string; rule : string; replacement : int }
  | Plan_walk of { steps : int; hits : int }
  | Plan_match of { pattern : string }
  | Replace of { old_root : int; new_root : int }
  | Gc of { collected : int }
  | Iteration of { n : int }
  | Pass_begin of { engine : string; patterns : int }
  | Pass_end of { rewrites : int; iterations : int }
  | Rolled_back of { pattern : string; rule : string; reason : string; undone : int }
  | Cycle_rejected of { pattern : string; rule : string }
  | Quarantined of { pattern : string; strikes : int }
  | Engine_degraded of { from_ : string; to_ : string; reason : string }
  | Fault_injected of { point : string }
  | Deadline_hit of { budget_s : float }
  | Cache_hit of { key : string }
  | Cache_miss of { key : string }
  | Cache_evicted of { key : string; bytes : int }
  | Request_served of { id : int; cached : bool }
  | Request_shed of { id : int }
  | Worker_restarted of { worker : int; restarts : int }
  | Job_poisoned of { id : int }
  | Shard_dispatch of { domains : int; candidates : int }
  | Shard_matched of { domain : int; nodes : int; witnesses : int }
  | Shard_merged of { fired : int; replayed : int; discarded : int }
  | Sat_iteration of { n : int; classes : int; nodes : int }
  | Sat_union of { rule : string }
  | Sat_extract of {
      output : int;
      before_cost : float;
      after_cost : float;
      accepted : bool;
    }

type event = { ts : float; dur : float; node : int; kind : kind }

(* ------------------------------------------------------------------ *)
(* Clocks                                                              *)
(*                                                                     *)
(* Two clocks on purpose: trace timestamps want wall-clock time (so    *)
(* traces from different processes line up), while durations and       *)
(* deadlines want a clock that cannot jump backwards under NTP slew.   *)
(* ------------------------------------------------------------------ *)

external monotonic_raw : unit -> float = "pypm_obs_monotonic_s"

let clock = ref Unix.gettimeofday
let set_clock f = clock := f
let now () = !clock ()
let mono_clock = ref monotonic_raw
let set_monotonic_clock f = mono_clock := f
let monotonic () = !mono_clock ()

(* ------------------------------------------------------------------ *)
(* Per-domain state                                                    *)
(*                                                                     *)
(* The ring buffer and the sink list are domain-local: the serve worker *)
(* pool runs one rewrite pass per domain, and each pass attaches its    *)
(* own aggregator sink. A process-global sink list would interleave     *)
(* events from unrelated passes (corrupting every worker's stats) and   *)
(* race on the list itself. Domain.DLS gives each domain an isolated    *)
(* ring + sinks at no cost to the single-domain CLI paths.              *)
(* ------------------------------------------------------------------ *)

type sink = event -> unit

type dstate = {
  mutable ring_cap : int;
  mutable ring : event option array;
  mutable ring_next : int; (* next write position *)
  mutable ring_len : int;
  mutable next_sink_id : int;
  mutable sinks : (int * sink) list;
}

let dstate_key =
  Domain.DLS.new_key (fun () ->
      {
        ring_cap = 4096;
        ring = Array.make 4096 None;
        ring_next = 0;
        ring_len = 0;
        next_sink_id = 0;
        sinks = [];
      })

let st () = Domain.DLS.get dstate_key

(* ------------------------------------------------------------------ *)
(* Ring buffer: always on, fixed cost per event                        *)
(* ------------------------------------------------------------------ *)

let ring_push d e =
  d.ring.(d.ring_next) <- Some e;
  d.ring_next <- (d.ring_next + 1) mod d.ring_cap;
  if d.ring_len < d.ring_cap then d.ring_len <- d.ring_len + 1

let ring_reset () =
  let d = st () in
  Array.fill d.ring 0 d.ring_cap None;
  d.ring_next <- 0;
  d.ring_len <- 0

let set_ring_capacity n =
  if n <= 0 then invalid_arg "Obs.set_ring_capacity: capacity must be > 0";
  let d = st () in
  d.ring_cap <- n;
  d.ring <- Array.make n None;
  d.ring_next <- 0;
  d.ring_len <- 0

let recent ?limit () =
  let d = st () in
  let len = match limit with Some l -> min l d.ring_len | None -> d.ring_len in
  let first = (d.ring_next - len + (d.ring_cap * 2)) mod d.ring_cap in
  List.init len (fun i ->
      match d.ring.((first + i) mod d.ring_cap) with
      | Some e -> e
      | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let add_sink s =
  let d = st () in
  let id = d.next_sink_id in
  d.next_sink_id <- id + 1;
  d.sinks <- (id, s) :: d.sinks;
  fun () ->
    let d = st () in
    d.sinks <- List.filter (fun (i, _) -> i <> id) d.sinks

let with_sink s f =
  let detach = add_sink s in
  Fun.protect ~finally:detach f

let emit ?(node = -1) ?(dur = 0.) kind =
  let d = st () in
  let e = { ts = now (); dur; node; kind } in
  ring_push d e;
  match d.sinks with
  | [] -> ()
  | ss -> List.iter (fun (_, s) -> s e) ss

(* Deliver events that were stamped on another domain (a shard worker's
   collector) into this domain's ring and sinks, preserving their
   original timestamps. The sharded pass uses this so one pass still
   yields one coherent event stream on the calling domain. *)
let replay events =
  let d = st () in
  List.iter
    (fun e ->
      ring_push d e;
      match d.sinks with
      | [] -> ()
      | ss -> List.iter (fun (_, s) -> s e) ss)
    events

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

module Collector = struct
  type t = { mutable rev : event list; mutable n : int }

  let create () = { rev = []; n = 0 }

  let sink c e =
    c.rev <- e :: c.rev;
    c.n <- c.n + 1

  let events c = List.rev c.rev
  let length c = c.n

  let clear c =
    c.rev <- [];
    c.n <- 0
end

(* ------------------------------------------------------------------ *)
(* Per-pattern aggregation                                             *)
(* ------------------------------------------------------------------ *)

module Agg = struct
  type pat = {
    mutable attempts : int;
    mutable pruned_head : int;
    mutable pruned_plan : int;
    mutable matches : int;
    mutable rewrites : int;
    mutable fuel_exhausted : int;
    mutable guard_rejects : int;
    mutable type_rejects : int;
    mutable rolled_back : int;
    mutable cycle_rejects : int;
    mutable match_time : float;
    hist : int array;
  }

  let hist_buckets = 24

  type t = {
    table : (string, pat) Hashtbl.t;
    mutable order : string list; (* reverse first-seen order *)
  }

  let create () = { table = Hashtbl.create 16; order = [] }

  let pat t name =
    match Hashtbl.find_opt t.table name with
    | Some p -> p
    | None ->
        let p =
          {
            attempts = 0;
            pruned_head = 0;
            pruned_plan = 0;
            matches = 0;
            rewrites = 0;
            fuel_exhausted = 0;
            guard_rejects = 0;
            type_rejects = 0;
            rolled_back = 0;
            cycle_rejects = 0;
            match_time = 0.;
            hist = Array.make hist_buckets 0;
          }
        in
        Hashtbl.add t.table name p;
        t.order <- name :: t.order;
        p

  (* bucket 0: < 1 µs; bucket i: [2^(i-1), 2^i) µs *)
  let bucket_of_dur dur =
    let us = dur *. 1e6 in
    if us < 1. then 0
    else
      let rec go i b = if us < b || i = hist_buckets - 1 then i else go (i + 1) (b *. 2.) in
      go 1 2.

  let sink t e =
    match e.kind with
    | Match_attempt { pattern; outcome; visits = _ } ->
        let p = pat t pattern in
        p.attempts <- p.attempts + 1;
        p.match_time <- p.match_time +. e.dur;
        p.hist.(bucket_of_dur e.dur) <- p.hist.(bucket_of_dur e.dur) + 1;
        if outcome = Matched then p.matches <- p.matches + 1
    | Pruned { pattern; via = Head_index } ->
        let p = pat t pattern in
        p.pruned_head <- p.pruned_head + 1
    | Pruned { pattern; via = Plan_trie } ->
        let p = pat t pattern in
        p.pruned_plan <- p.pruned_plan + 1
    | Fuel_exhausted { pattern; _ } ->
        let p = pat t pattern in
        p.fuel_exhausted <- p.fuel_exhausted + 1
    | Guard_reject { pattern; _ } ->
        let p = pat t pattern in
        p.guard_rejects <- p.guard_rejects + 1
    | Type_reject { pattern; _ } ->
        let p = pat t pattern in
        p.type_rejects <- p.type_rejects + 1
    | Rule_fired { pattern; _ } ->
        let p = pat t pattern in
        p.rewrites <- p.rewrites + 1
    | Plan_match { pattern } ->
        let p = pat t pattern in
        p.matches <- p.matches + 1
    | Rolled_back { pattern; _ } ->
        let p = pat t pattern in
        p.rolled_back <- p.rolled_back + 1
    | Cycle_rejected { pattern; _ } ->
        let p = pat t pattern in
        p.cycle_rejects <- p.cycle_rejects + 1
    | Matcher_fuel _ | Plan_walk _ | Replace _ | Gc _ | Iteration _
    | Pass_begin _ | Pass_end _ | Quarantined _ | Engine_degraded _
    | Fault_injected _ | Deadline_hit _ | Cache_hit _ | Cache_miss _
    | Cache_evicted _ | Request_served _ | Request_shed _
    | Worker_restarted _ | Job_poisoned _
    | Shard_dispatch _ | Shard_matched _ | Shard_merged _ | Sat_iteration _
    | Sat_union _ | Sat_extract _ ->
        ()

  let find t name = Hashtbl.find_opt t.table name
  let patterns t = List.rev_map (fun n -> (n, pat t n)) t.order

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (name, p) ->
        Format.fprintf ppf
          "%-24s attempts %-6d matches %-5d rewrites %-4d fuel %-3d guard- \
           %-3d type- %-3d %.4f s@,"
          name p.attempts p.matches p.rewrites p.fuel_exhausted p.guard_rejects
          p.type_rejects p.match_time)
      (patterns t);
    Format.fprintf ppf "@]"
end

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

module Provenance = struct
  type step = {
    seq : int;
    pattern : string;
    rule : string;
    matched_root : int;
    matched_op : string;
    replacement_root : int;
    replacement_op : string;
    theta_dom : string list;
    phi_dom : string list;
  }

  let pp_step ppf s =
    let dom =
      match s.theta_dom @ List.map (fun f -> f ^ "/fn") s.phi_dom with
      | [] -> ""
      | xs -> Printf.sprintf " binding {%s}" (String.concat ", " xs)
    in
    Format.fprintf ppf
      "step %d: rule %s (pattern %s) rewrote %%%d %s -> %%%d %s%s" s.seq
      s.rule s.pattern s.matched_root s.matched_op s.replacement_root
      s.replacement_op dom

  let pp ppf steps =
    Format.fprintf ppf "@[<v>";
    List.iter (fun s -> Format.fprintf ppf "%a@," pp_step s) steps;
    Format.fprintf ppf "@]"
end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let outcome_to_string = function
  | Matched -> "matched"
  | No_match -> "no-match"
  | Stuck -> "stuck"
  | Out_of_fuel -> "out-of-fuel"

let prune_to_string = function
  | Head_index -> "head-index"
  | Plan_trie -> "plan-trie"

(* name, category, args *)
let describe = function
  | Match_attempt { pattern; outcome; visits } ->
      ( "match " ^ pattern,
        "matcher",
        [
          ("pattern", `S pattern);
          ("outcome", `S (outcome_to_string outcome));
          ("visits", `I visits);
        ] )
  | Pruned { pattern; via } ->
      ( "prune " ^ pattern,
        "pass",
        [ ("pattern", `S pattern); ("via", `S (prune_to_string via)) ] )
  | Fuel_exhausted { pattern; fuel } ->
      ( "fuel-exhausted " ^ pattern,
        "pass",
        [ ("pattern", `S pattern); ("fuel", `I fuel) ] )
  | Matcher_fuel { visits } ->
      ("matcher out-of-fuel", "matcher", [ ("visits", `I visits) ])
  | Guard_reject { pattern; rule } ->
      ( "guard-reject " ^ rule,
        "pass",
        [ ("pattern", `S pattern); ("rule", `S rule) ] )
  | Type_reject { pattern; rule } ->
      ( "type-reject " ^ rule,
        "pass",
        [ ("pattern", `S pattern); ("rule", `S rule) ] )
  | Rule_fired { pattern; rule; replacement } ->
      ( "fire " ^ rule,
        "pass",
        [
          ("pattern", `S pattern);
          ("rule", `S rule);
          ("replacement", `I replacement);
        ] )
  | Plan_walk { steps; hits } ->
      ("plan-walk", "plan", [ ("steps", `I steps); ("hits", `I hits) ])
  | Plan_match { pattern } ->
      ("plan-match " ^ pattern, "plan", [ ("pattern", `S pattern) ])
  | Replace { old_root; new_root } ->
      ( "replace",
        "graph",
        [ ("old_root", `I old_root); ("new_root", `I new_root) ] )
  | Gc { collected } -> ("gc", "graph", [ ("collected", `I collected) ])
  | Iteration { n } -> ("iteration", "pass", [ ("n", `I n) ])
  | Pass_begin { engine; patterns } ->
      ( "pass",
        "pass",
        [ ("engine", `S engine); ("patterns", `I patterns) ] )
  | Pass_end { rewrites; iterations } ->
      ( "pass-end",
        "pass",
        [ ("rewrites", `I rewrites); ("iterations", `I iterations) ] )
  | Rolled_back { pattern; rule; reason; undone } ->
      ( "rollback " ^ rule,
        "resilience",
        [
          ("pattern", `S pattern);
          ("rule", `S rule);
          ("reason", `S reason);
          ("undone", `I undone);
        ] )
  | Cycle_rejected { pattern; rule } ->
      ( "cycle-reject " ^ rule,
        "resilience",
        [ ("pattern", `S pattern); ("rule", `S rule) ] )
  | Quarantined { pattern; strikes } ->
      ( "quarantine " ^ pattern,
        "resilience",
        [ ("pattern", `S pattern); ("strikes", `I strikes) ] )
  | Engine_degraded { from_; to_; reason } ->
      ( "engine-degrade",
        "resilience",
        [ ("from", `S from_); ("to", `S to_); ("reason", `S reason) ] )
  | Fault_injected { point } ->
      ("fault " ^ point, "resilience", [ ("point", `S point) ])
  | Deadline_hit { budget_s } ->
      ( "deadline",
        "resilience",
        [ ("budget_ms", `I (int_of_float (budget_s *. 1000.))) ] )
  | Cache_hit { key } -> ("cache-hit", "serve", [ ("key", `S key) ])
  | Cache_miss { key } -> ("cache-miss", "serve", [ ("key", `S key) ])
  | Cache_evicted { key; bytes } ->
      ("cache-evict", "serve", [ ("key", `S key); ("bytes", `I bytes) ])
  | Request_served { id; cached } ->
      ( "request-served",
        "serve",
        [ ("id", `I id); ("cached", `S (string_of_bool cached)) ] )
  | Request_shed { id } -> ("request-shed", "serve", [ ("id", `I id) ])
  | Worker_restarted { worker; restarts } ->
      ( "worker-restarted",
        "serve",
        [ ("worker", `I worker); ("restarts", `I restarts) ] )
  | Job_poisoned { id } -> ("job-poisoned", "serve", [ ("id", `I id) ])
  | Shard_dispatch { domains; candidates } ->
      ( "shard-dispatch",
        "parallel",
        [ ("domains", `I domains); ("candidates", `I candidates) ] )
  | Shard_matched { domain; nodes; witnesses } ->
      ( "shard-matched",
        "parallel",
        [
          ("domain", `I domain);
          ("nodes", `I nodes);
          ("witnesses", `I witnesses);
        ] )
  | Shard_merged { fired; replayed; discarded } ->
      ( "shard-merged",
        "parallel",
        [
          ("fired", `I fired);
          ("replayed", `I replayed);
          ("discarded", `I discarded);
        ] )
  | Sat_iteration { n; classes; nodes } ->
      ( "sat-iteration",
        "egraph",
        [ ("n", `I n); ("classes", `I classes); ("nodes", `I nodes) ] )
  | Sat_union { rule } -> ("sat-union " ^ rule, "egraph", [ ("rule", `S rule) ])
  | Sat_extract { output; before_cost; after_cost; accepted } ->
      ( "sat-extract",
        "egraph",
        [
          ("output", `I output);
          ("before_cost_ns", `I (int_of_float (before_cost *. 1e9)));
          ("after_cost_ns", `I (int_of_float (after_cost *. 1e9)));
          ("accepted", `S (string_of_bool accepted));
        ] )

module Chrome = struct
  let args_json args node =
    let fields =
      (if node >= 0 then [ ("node", `I node) ] else []) @ args
    in
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":%s" (json_escape k)
               (match v with
               | `S s -> "\"" ^ json_escape s ^ "\""
               | `I i -> string_of_int i))
           fields)
    ^ "}"

  let to_string events =
    let epoch =
      List.fold_left (fun a e -> Float.min a e.ts) infinity events
    in
    let epoch = if epoch = infinity then 0. else epoch in
    let buf = Buffer.create 65536 in
    Buffer.add_string buf "{\"traceEvents\":[";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        let name, cat, args = describe e.kind in
        let ts_us = (e.ts -. epoch) *. 1e6 in
        if e.dur > 0. then
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":%s}"
               (json_escape name) (json_escape cat) ts_us (e.dur *. 1e6)
               (args_json args e.node))
        else
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":%s}"
               (json_escape name) (json_escape cat) ts_us
               (args_json args e.node)))
      events;
    Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
    Buffer.contents buf

  let write path events =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string events))
end

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_kind ppf k =
  let name, cat, args = describe k in
  Format.fprintf ppf "[%s] %s" cat name;
  List.iter
    (fun (k, v) ->
      match v with
      | `S s -> Format.fprintf ppf " %s=%s" k s
      | `I i -> Format.fprintf ppf " %s=%d" k i)
    args

let pp_event ppf e =
  Format.fprintf ppf "%.6f %a" e.ts pp_kind e.kind;
  if e.node >= 0 then Format.fprintf ppf " node=%%%d" e.node;
  if e.dur > 0. then Format.fprintf ppf " dur=%.1fus" (e.dur *. 1e6)
