open Pypm_term
open Pypm_pattern

exception Out_of_fuel_exc
exception Stuck_exc

(* Per-domain: the server's worker pool runs one matcher per domain, and a
   shared counter would mix their visit totals (and lose increments). Each
   domain sees its own matcher's work, which is what the pass stats mean. *)
let visits_key = Domain.DLS.new_key (fun () -> ref 0)
let visits () = Domain.DLS.get visits_key
let last_visits () = !(visits ())

(* Cumulative pattern-node visits across calls; the engine-comparison
   benches (FIG12/13 with --engine) read this to total the matcher work a
   whole pass performed. *)
let cumulative_key = Domain.DLS.new_key (fun () -> ref 0)
let cumulative_visits () = !(Domain.DLS.get cumulative_key)
let reset_cumulative_visits () = Domain.DLS.get cumulative_key := 0

(* The success continuation returns [Some] to commit to a witness and [None]
   to ask the current choice point to try its next alternative. Raising
   [Stuck_exc] aborts the entire search, mirroring the machine halting when
   no transition rule applies. *)
let search ~interp ~(policy : Outcome.Policy.t) ~fuel ~theta ~phi p t :
    (Subst.t * Fsubst.t) option =
  let remaining = ref fuel in
  (* one DLS lookup per search, not per visit: the counters are hot *)
  let visits = visits () and cumulative = Domain.DLS.get cumulative_key in
  let spend () =
    incr visits;
    incr cumulative;
    decr remaining;
    if !remaining < 0 then raise Out_of_fuel_exc
  in
  let stuck () =
    match policy with Faithful -> raise Stuck_exc | Backtrack -> None
  in
  let rec go p t theta phi (sk : Subst.t -> Fsubst.t -> 'a option) : 'a option
      =
    spend ();
    match (p : Pattern.t) with
    | Var x -> (
        match Subst.bind x t theta with
        | Ok theta -> sk theta phi
        | Error (`Conflict _) -> None)
    | App (f, ps) ->
        if Symbol.equal f (Term.head t) then go_args ps (Term.args t) theta phi sk
        else None
    | Fapp (fv, ps) -> (
        let f = Term.head t and ts = Term.args t in
        if List.length ps <> List.length ts then None
        else
          match Fsubst.bind fv f phi with
          | Ok phi -> go_args ps ts theta phi sk
          | Error (`Conflict _) -> None)
    | Alt (p1, p2) -> (
        match go p1 t theta phi sk with
        | Some _ as r -> r
        | None -> go p2 t theta phi sk)
    | Guarded (p, g) ->
        go p t theta phi (fun theta phi ->
            match Guard.eval interp theta phi g with
            | Some true -> sk theta phi
            | Some false -> None
            | None -> stuck ())
    | Exists (x, p) ->
        go p t theta phi (fun theta phi ->
            (* checkName(x) *)
            if Subst.mem x theta then sk theta phi else stuck ())
    | Exists_f (f, p) ->
        go p t theta phi (fun theta phi ->
            (* checkFName(F) *)
            if Fsubst.mem f phi then sk theta phi else stuck ())
    | Constr (p, p', x) ->
        go p t theta phi (fun theta phi ->
            (* matchConstr(p', x) *)
            match Subst.find x theta with
            | Some t' -> go p' t' theta phi sk
            | None -> stuck ())
    | Mu (m, ys) -> go (Pattern.unfold m ys) t theta phi sk
    | Call _ ->
        (* free recursive call: ill-formed *)
        stuck ()
  and go_args ps ts theta phi sk =
    (* Arity mismatch is a structural conflict, same as a head mismatch. *)
    match (ps, ts) with
    | [], [] -> sk theta phi
    | p :: ps, t :: ts ->
        go p t theta phi (fun theta phi -> go_args ps ts theta phi sk)
    | _ -> None
  in
  go p t theta phi (fun theta phi -> Some (theta, phi))

let matches_at ~interp ?(policy = Outcome.Policy.Backtrack)
    ?(fuel = 1_000_000) ~theta ~phi p t : Outcome.t =
  visits () := 0;
  match search ~interp ~policy ~fuel ~theta ~phi p t with
  | Some (theta, phi) -> Matched (theta, phi)
  | None -> No_match
  | exception Out_of_fuel_exc ->
      Pypm_obs.Obs.emit (Pypm_obs.Obs.Matcher_fuel { visits = !(visits ()) });
      Out_of_fuel
  | exception Stuck_exc -> Stuck

let matches ~interp ?(policy = Outcome.Policy.Backtrack) ?(fuel = 1_000_000) p
    t =
  matches_at ~interp ~policy ~fuel ~theta:Subst.empty ~phi:Fsubst.empty p t
