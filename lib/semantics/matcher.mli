(** The production matcher.

    This is the repository's analogue of the "thousands of lines of C++"
    matching subroutine in DLCB: an efficient, direct implementation of the
    algorithmic semantics using success continuations and native-stack
    backtracking instead of an explicit machine state. It is deliberately
    left-eager exactly like the machine, so the first witness it produces
    coincides with the machine's [success] substitution (property-tested in
    [test/test_equiv.ml]).

    Complexity: no explicit continuation lists are allocated; the
    backtracking stack is the OCaml call stack; substitutions are persistent
    maps so choice points are O(1) to save and restore. *)

open Pypm_term
open Pypm_pattern

(** [matches ~interp ?policy ?fuel p t] runs the matcher to its first
    result. Default [policy] is [Backtrack] (the production behaviour:
    an assert that cannot be evaluated fails); default [fuel] bounds
    pattern-node visits, 1_000_000. *)
val matches :
  interp:Guard.interp ->
  ?policy:Outcome.Policy.t ->
  ?fuel:int ->
  Pattern.t ->
  Term.t ->
  Outcome.t

(** [matches_at ~interp ?policy ?fuel ~theta ~phi p t] starts from existing
    bindings instead of empty substitutions. Used by the rewrite engine to
    match rule-level constraints under the pattern's substitution. *)
val matches_at :
  interp:Guard.interp ->
  ?policy:Outcome.Policy.t ->
  ?fuel:int ->
  theta:Subst.t ->
  phi:Fsubst.t ->
  Pattern.t ->
  Term.t ->
  Outcome.t

(** Nodes visited by the last call on this domain; cheap instrumentation for
    the FIG12/FIG13 compile-cost benches. *)
val last_visits : unit -> int

(** Nodes visited by every call since {!reset_cumulative_visits}: the total
    backtracking-matcher work a whole pass performed. The FIG12/13 engine
    comparison resets this around each engine run; the shared-plan engine's
    analogous counter is [Plan.cumulative_steps]. *)
val cumulative_visits : unit -> int

val reset_cumulative_visits : unit -> unit
