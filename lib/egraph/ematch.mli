(** E-matching: pattern matching over e-classes.

    Matches the {e simple} pattern subset — variables, operator
    applications, function variables, and alternates — against an e-graph,
    binding variables to e-class ids (the paper's related-work comparison:
    de Moura & Bjorner's E-matching is "a subset of PyPM's matching
    algorithm"). Guards, existentials, match constraints and recursion are
    rejected: those require a concrete witness term, which an e-class does
    not determine. *)

open Pypm_term

(** Variable assignment: pattern variables to e-classes, function variables
    to operators. *)
type env = { classes : Egraph.id Symbol.Map.t; ops : Symbol.t Symbol.Map.t }

val empty_env : env

(** [supported p] is [Ok ()] for the simple subset, [Error reason]
    otherwise. *)
val supported : Pypm_pattern.Pattern.t -> (unit, string) result

(** [matches_in g p cls] enumerates every assignment under which some term
    of [cls] matches [p]. Nonlinear variables require e-class equality.
    [Error reason] on patterns outside the supported subset (the
    {!supported} check, folded in). *)
val matches_in :
  Egraph.t -> Pypm_pattern.Pattern.t -> Egraph.id -> (env list, string) result

(** [matches g p] enumerates (class, assignment) pairs over the whole
    e-graph. [Error reason] on unsupported patterns. *)
val matches :
  Egraph.t ->
  Pypm_pattern.Pattern.t ->
  ((Egraph.id * env) list, string) result
