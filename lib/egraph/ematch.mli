(** E-matching: pattern matching over e-classes.

    Matches the {e simple} pattern subset — variables, operator
    applications, function variables, and alternates — against an e-graph,
    binding variables to e-class ids (the paper's related-work comparison:
    de Moura & Bjorner's E-matching is "a subset of PyPM's matching
    algorithm"). Existentials, match constraints and recursion are
    rejected: those require a concrete witness term, which an e-class does
    not determine. Guards are rejected by default for the same reason, but
    callers that can evaluate a guard against a per-class witness (the
    e-graph engine in [Pass]) may pass a [?guard] evaluator and use the
    {!supported_guarded} subset instead. *)

open Pypm_term

(** Variable assignment: pattern variables to e-classes, function variables
    to operators. *)
type env = { classes : Egraph.id Symbol.Map.t; ops : Symbol.t Symbol.Map.t }

val empty_env : env

(** [supported p] is [Ok ()] for the simple subset, [Error reason]
    otherwise. *)
val supported : Pypm_pattern.Pattern.t -> (unit, string) result

(** Like {!supported} but additionally admits [Guarded] nodes — for
    callers that will supply a [?guard] evaluator to the matching
    functions. *)
val supported_guarded : Pypm_pattern.Pattern.t -> (unit, string) result

(** [matches_in g p cls] enumerates every assignment under which some term
    of [cls] matches [p]. Nonlinear variables require e-class equality.
    [Error reason] on patterns outside the supported subset (the
    {!supported} check, folded in — {!supported_guarded} when [?guard] is
    given). The evaluator is called in the success continuation of the
    guarded subpattern, with every variable it binds in scope; returning
    [false] prunes that assignment. *)
val matches_in :
  ?guard:(Pypm_pattern.Guard.t -> env -> bool) ->
  Egraph.t ->
  Pypm_pattern.Pattern.t ->
  Egraph.id ->
  (env list, string) result

(** [matches g p] enumerates (class, assignment) pairs over the whole
    e-graph. [Error reason] on unsupported patterns. *)
val matches :
  ?guard:(Pypm_pattern.Guard.t -> env -> bool) ->
  Egraph.t ->
  Pypm_pattern.Pattern.t ->
  ((Egraph.id * env) list, string) result

(** [matches_at g p roots] is {!matches} restricted to the given candidate
    root classes — the dirty-class-driven rematching entry point. Assumes
    [p] already passed the relevant [supported] check; the saturation loop
    validates once per rule, not once per round. *)
val matches_at :
  ?guard:(Pypm_pattern.Guard.t -> env -> bool) ->
  Egraph.t ->
  Pypm_pattern.Pattern.t ->
  Egraph.id list ->
  (Egraph.id * env) list
