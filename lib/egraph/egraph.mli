(** E-graphs: the nondestructive-rewriting baseline.

    The paper positions PyPM against equality-saturation engines in the
    egg family (sections 1 and 5): "with the more superficial distinctions
    aside (destructive instead of nondestructive rewriting), there are two
    main differences...". This module supplies that comparison point as a
    real implementation: a congruence-closed e-graph over the same terms,
    with hash-consed e-nodes, union-find over e-classes, and a rebuild
    (congruence repair) step — enough to run {!Ematch} and {!Saturate}
    against the greedy destructive pass and measure the trade.

    The e-graph represents sets of equivalent terms compactly: an e-class
    is a set of e-nodes; an e-node is an operator applied to e-class ids.
    Adding is hash-consed (structurally equal terms land in the same
    class); {!union} merges classes; {!rebuild} restores congruence
    ([a ~ b] implies [f(a) ~ f(b)]) after unions. *)

open Pypm_term

type t

(** E-class identifiers. Stable under unions up to {!find}. *)
type id = int

val create : unit -> t

(** [add g op children] adds (or finds) the e-node [op(children)] and
    returns its e-class. *)
val add : t -> Symbol.t -> id list -> id

(** [add_term g t] folds a whole term in. *)
val add_term : t -> Term.t -> id

(** Canonical representative of an e-class. *)
val find : t -> id -> id

(** [union g a b] merges two e-classes; returns the canonical id and
    whether anything changed. Call {!rebuild} before matching again. *)
val union : t -> id -> id -> id * bool

(** Restore congruence after unions. Returns the number of upward merges
    performed. *)
val rebuild : t -> int

(** [equiv g a b] after rebuild: do [a] and [b] denote the same class? *)
val equiv : t -> id -> id -> bool

(** E-nodes of a class (canonicalized): operator and child classes, in
    {!compare_enode_view} order with duplicates removed. *)
val nodes_of : t -> id -> (Symbol.t * id list) list

(** Typed comparator over the [(op, children)] views {!nodes_of} returns:
    operator first ({!Pypm_term.Symbol.compare}), then children ids. The
    polymorphic [compare] would order these by representation — the same
    latent hazard PR 6 fixed in [Load.percentile]. *)
val compare_enode_view : Symbol.t * id list -> Symbol.t * id list -> int

(** All canonical class ids. *)
val classes : t -> id list

(** Total classes ever created (monotone; merged classes still count).
    Growth between two reads means new e-nodes were added. *)
val created : t -> int

(** Canonical ids of the classes whose e-nodes use [id] as a child — one
    upward step of the congruence [uses] relation. *)
val parents_of : t -> id -> id list

(** Drain the change log: canonical ids of classes created or merged
    since the previous call (or since creation). Dirty-class-driven
    rematching seeds its affected set from this. *)
val take_touched : t -> id list

(** Counts, for saturation stopping criteria and reporting. *)
val class_count : t -> int

val node_count : t -> int

(** [extract g ~cost id] picks the cheapest term of the class: [cost op]
    is the per-operator cost (children costs are added). Returns [None] if
    the class has no finite-cost term (cyclic without base); extraction
    terminates on any e-graph, cyclic classes included. *)
val extract : t -> cost:(Symbol.t -> float) -> id -> Term.t option

(** [extract_enode g ~cost id] is {!extract} with e-node granularity: the
    cost of choosing [(op, children)] inside class [cls] is
    [cost cls op children] — enough context to look up class types and
    charge a real kernel cost model. The reconstruction is memoized per
    class, so shared subterms are built once and returned physically
    shared. Beware that the {e tree unfolding} of the returned term is
    exponential on heavily shared DAGs: comparing or hashing it against a
    term from another DAG pays that unfolding. Callers splicing back into
    a graph should use {!extract_dag} and build nodes from the choice
    table instead. *)
val extract_enode :
  t -> cost:(id -> Symbol.t -> id list -> float) -> id -> Term.t option

(** [extract_dag g ~cost id] is the cost fixpoint behind {!extract_enode}
    without the term reconstruction: for every canonical class that has at
    least one finite-DAG term, the cheapest [(total cost, (op, children))]
    choice, where children are canonical class ids and [total] includes
    the children's totals. [None] when [id]'s class has no extractable
    term at all. The [cost] callback runs once per e-node. Keys are
    canonical class ids — callers must {!find} before lookup. *)
val extract_dag :
  t ->
  cost:(id -> Symbol.t -> id list -> float) ->
  id ->
  (id, float * (Symbol.t * id list)) Hashtbl.t option

(** Uniform cost 1 per operator: extraction by term size. *)
val size_cost : Symbol.t -> float

val pp : Format.formatter -> t -> unit
