open Pypm_term
open Pypm_pattern
module P = Pattern

type env = { classes : Egraph.id Symbol.Map.t; ops : Symbol.t Symbol.Map.t }

let empty_env = { classes = Symbol.Map.empty; ops = Symbol.Map.empty }

let rec supported (p : P.t) =
  match p with
  | P.Var _ -> Ok ()
  | P.App (_, ps) | P.Fapp (_, ps) ->
      List.fold_left
        (fun acc q -> Result.bind acc (fun () -> supported q))
        (Ok ()) ps
  | P.Alt (a, b) -> Result.bind (supported a) (fun () -> supported b)
  | P.Guarded _ -> Error "guards need a concrete witness term"
  | P.Exists _ | P.Exists_f _ -> Error "existentials need a concrete witness"
  | P.Constr _ -> Error "match constraints need a concrete witness"
  | P.Mu _ | P.Call _ -> Error "recursive patterns are not e-matchable here"

(* All-solutions backtracking, collecting assignments. Only called on
   patterns [supported] has accepted. *)
let matches_in_checked g p cls =
  let out = ref [] in
  let rec go (p : P.t) cls env (sk : env -> unit) =
    let cls = Egraph.find g cls in
    match p with
    | P.Var x -> (
        match Symbol.Map.find_opt x env.classes with
        | Some c -> if Egraph.find g c = cls then sk env
        | None -> sk { env with classes = Symbol.Map.add x cls env.classes })
    | P.App (f, ps) ->
        List.iter
          (fun (op, children) ->
            if Symbol.equal op f && List.length children = List.length ps
            then go_args ps children env sk)
          (Egraph.nodes_of g cls)
    | P.Fapp (fv, ps) ->
        List.iter
          (fun (op, children) ->
            if List.length children = List.length ps then
              match Symbol.Map.find_opt fv env.ops with
              | Some s ->
                  if Symbol.equal s op then go_args ps children env sk
              | None ->
                  go_args ps children
                    { env with ops = Symbol.Map.add fv op env.ops }
                    sk)
          (Egraph.nodes_of g cls)
    | P.Alt (a, b) ->
        go a cls env sk;
        go b cls env sk
    | _ -> assert false
  and go_args ps cs env sk =
    match (ps, cs) with
    | [], [] -> sk env
    | p :: ps, c :: cs -> go p c env (fun env -> go_args ps cs env sk)
    | _ -> ()
  in
  go p cls empty_env (fun env -> out := env :: !out);
  List.rev !out

let matches_in g p cls =
  match supported p with
  | Error _ as e -> e
  | Ok () -> Ok (matches_in_checked g p cls)

let matches g p =
  match supported p with
  | Error _ as e -> e
  | Ok () ->
      Ok
        (List.concat_map
           (fun cls ->
             List.map (fun env -> (cls, env)) (matches_in_checked g p cls))
           (Egraph.classes g))
