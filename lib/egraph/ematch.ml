open Pypm_term
open Pypm_pattern
module P = Pattern

type env = { classes : Egraph.id Symbol.Map.t; ops : Symbol.t Symbol.Map.t }

let empty_env = { classes = Symbol.Map.empty; ops = Symbol.Map.empty }

(* [guards:true] admits [Guarded] nodes for callers that supply a guard
   evaluator (the e-graph engine evaluates guards on per-class witness
   terms); the default keeps the historical contract — a guard needs a
   concrete witness term, which a bare e-class does not determine. *)
let rec supported_gen ~guards (p : P.t) =
  match p with
  | P.Var _ -> Ok ()
  | P.App (_, ps) | P.Fapp (_, ps) ->
      List.fold_left
        (fun acc q -> Result.bind acc (fun () -> supported_gen ~guards q))
        (Ok ()) ps
  | P.Alt (a, b) ->
      Result.bind (supported_gen ~guards a) (fun () -> supported_gen ~guards b)
  | P.Guarded (q, _) ->
      if guards then supported_gen ~guards q
      else Error "guards need a concrete witness term"
  | P.Exists _ | P.Exists_f _ -> Error "existentials need a concrete witness"
  | P.Constr _ -> Error "match constraints need a concrete witness"
  | P.Mu _ | P.Call _ -> Error "recursive patterns are not e-matchable here"

let supported p = supported_gen ~guards:false p
let supported_guarded p = supported_gen ~guards:true p

(* All-solutions backtracking, collecting assignments. Only called on
   patterns the relevant [supported] check has accepted, so a [Guarded]
   node can only appear when [guard] was supplied. The guard runs in the
   success continuation of its subpattern, when every variable the
   subpattern binds is in scope. *)
let matches_in_checked ?guard g p cls =
  let out = ref [] in
  let rec go (p : P.t) cls env (sk : env -> unit) =
    let cls = Egraph.find g cls in
    match p with
    | P.Var x -> (
        match Symbol.Map.find_opt x env.classes with
        | Some c -> if Egraph.find g c = cls then sk env
        | None -> sk { env with classes = Symbol.Map.add x cls env.classes })
    | P.App (f, ps) ->
        List.iter
          (fun (op, children) ->
            if Symbol.equal op f && List.length children = List.length ps
            then go_args ps children env sk)
          (Egraph.nodes_of g cls)
    | P.Fapp (fv, ps) ->
        List.iter
          (fun (op, children) ->
            if List.length children = List.length ps then
              match Symbol.Map.find_opt fv env.ops with
              | Some s ->
                  if Symbol.equal s op then go_args ps children env sk
              | None ->
                  go_args ps children
                    { env with ops = Symbol.Map.add fv op env.ops }
                    sk)
          (Egraph.nodes_of g cls)
    | P.Alt (a, b) ->
        go a cls env sk;
        go b cls env sk
    | P.Guarded (q, gd) -> (
        match guard with
        | Some ok -> go q cls env (fun env -> if ok gd env then sk env)
        | None -> assert false)
    | _ -> assert false
  and go_args ps cs env sk =
    match (ps, cs) with
    | [], [] -> sk env
    | p :: ps, c :: cs -> go p c env (fun env -> go_args ps cs env sk)
    | _ -> ()
  in
  go p cls empty_env (fun env -> out := env :: !out);
  List.rev !out

let check ?guard p =
  match guard with None -> supported p | Some _ -> supported_guarded p

let matches_in ?guard g p cls =
  match check ?guard p with
  | Error _ as e -> e
  | Ok () -> Ok (matches_in_checked ?guard g p cls)

let matches ?guard g p =
  match check ?guard p with
  | Error _ as e -> e
  | Ok () ->
      Ok
        (List.concat_map
           (fun cls ->
             List.map
               (fun env -> (cls, env))
               (matches_in_checked ?guard g p cls))
           (Egraph.classes g))

(* Root-restricted enumeration for dirty-class-driven rematching: like
   [matches] but only over the given candidate root classes. Assumes the
   pattern already passed [check] — the saturation loop validates once per
   rule, not once per round. *)
let matches_at ?guard g p roots =
  List.concat_map
    (fun cls ->
      let cls = Egraph.find g cls in
      List.map (fun env -> (cls, env)) (matches_in_checked ?guard g p cls))
    roots
