open Pypm_term

type rw = { rw_name : string; lhs : Pypm_pattern.Pattern.t; rhs : rhs }

and rhs =
  | Tvar of string
  | Tapp of Symbol.t * rhs list
  | Tfapp of string * rhs list

let rec rhs_vars = function
  | Tvar x -> (Symbol.Set.singleton x, Symbol.Set.empty)
  | Tapp (_, args) ->
      List.fold_left
        (fun (vs, fs) a ->
          let vs', fs' = rhs_vars a in
          (Symbol.Set.union vs vs', Symbol.Set.union fs fs'))
        (Symbol.Set.empty, Symbol.Set.empty)
        args
  | Tfapp (fv, args) ->
      List.fold_left
        (fun (vs, fs) a ->
          let vs', fs' = rhs_vars a in
          (Symbol.Set.union vs vs', Symbol.Set.union fs fs'))
        (Symbol.Set.empty, Symbol.Set.singleton fv)
        args

let rw ~name lhs rhs =
  match Ematch.supported lhs with
  | Error e -> Error (Printf.sprintf "rewrite %s: %s" name e)
  | Ok () ->
      let vs, fs = rhs_vars rhs in
      let unbound_v =
        Symbol.Set.diff vs (Pypm_pattern.Pattern.free_vars lhs)
      and unbound_f =
        Symbol.Set.diff fs (Pypm_pattern.Pattern.free_fvars lhs)
      in
      if not (Symbol.Set.is_empty unbound_v) then
        Error
          (Printf.sprintf
             "rewrite %s: template variable %s is not bound by the pattern"
             name
             (Symbol.Set.min_elt unbound_v))
      else if not (Symbol.Set.is_empty unbound_f) then
        Error
          (Printf.sprintf
             "rewrite %s: template operator variable %s is not bound by the \
              pattern"
             name
             (Symbol.Set.min_elt unbound_f))
      else Ok { rw_name = name; lhs; rhs }

type stats = {
  iterations : int;
  applications : int;
  skipped_applications : int;
  saturated : bool;
  final_classes : int;
  final_nodes : int;
}

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

(* [rw] checks the template against the pattern's free variables, but a
   disjunctive pattern binds only one branch's variables per match, so a
   template variable can still come up unbound for a particular
   assignment. That application is skipped (and counted), not fatal. *)
let rec instantiate g (env : Ematch.env) = function
  | Tvar x -> (
      match Symbol.Map.find_opt x env.Ematch.classes with
      | Some c -> Ok c
      | None -> Error x)
  | Tapp (op, args) ->
      let* cs = map_result (instantiate g env) args in
      Ok (Egraph.add g op cs)
  | Tfapp (fv, args) -> (
      match Symbol.Map.find_opt fv env.Ematch.ops with
      | Some op ->
          let* cs = map_result (instantiate g env) args in
          Ok (Egraph.add g op cs)
      | None -> Error fv)

let run g rules ?(iter_limit = 30) () =
  let applications = ref 0 and skipped = ref 0 in
  let rec loop i =
    if i >= iter_limit then (i, false)
    else begin
      (* collect all matches first (matching against a mutating e-graph
         would be order-dependent), then apply *)
      let matches =
        List.concat_map
          (fun r ->
            (* [rw] validated the lhs, so [Ematch.matches] cannot reject
               it; an [Error] here would mean the pattern was swapped out
               behind the smart constructor. *)
            match Ematch.matches g r.lhs with
            | Ok ms -> List.map (fun (cls, env) -> (r, cls, env)) ms
            | Error _ -> [])
          rules
      in
      let changed = ref false in
      List.iter
        (fun (r, cls, env) ->
          match instantiate g env r.rhs with
          | Error _ -> incr skipped
          | Ok rhs_cls ->
              let _, merged = Egraph.union g cls rhs_cls in
              if merged then (
                incr applications;
                changed := true))
        matches;
      ignore (Egraph.rebuild g);
      if !changed then loop (i + 1) else (i + 1, true)
    end
  in
  let iterations, saturated = loop 0 in
  {
    iterations;
    applications = !applications;
    skipped_applications = !skipped;
    saturated;
    final_classes = Egraph.class_count g;
    final_nodes = Egraph.node_count g;
  }

let simplify ~rules ?(cost = Egraph.size_cost) ?iter_limit t =
  let g = Egraph.create () in
  let root = Egraph.add_term g t in
  let stats = run g rules ?iter_limit () in
  match Egraph.extract g ~cost root with
  | Some best -> (best, stats)
  | None -> (t, stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d iteration(s), %d application(s)%s, %s, %d classes / %d nodes"
    s.iterations s.applications
    (if s.skipped_applications > 0 then
       Printf.sprintf " (%d skipped)" s.skipped_applications
     else "")
    (if s.saturated then "saturated" else "iteration limit")
    s.final_classes s.final_nodes
