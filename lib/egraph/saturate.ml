open Pypm_term
open Pypm_pattern

type rw = {
  rw_name : string;
  lhs : Pypm_pattern.Pattern.t;
  rhs : rhs;
  rw_guard : Guard.t;
}

and rhs =
  | Tvar of string
  | Tapp of Symbol.t * rhs list
  | Tfapp of string * rhs list

let rec rhs_vars = function
  | Tvar x -> (Symbol.Set.singleton x, Symbol.Set.empty)
  | Tapp (_, args) ->
      List.fold_left
        (fun (vs, fs) a ->
          let vs', fs' = rhs_vars a in
          (Symbol.Set.union vs vs', Symbol.Set.union fs fs'))
        (Symbol.Set.empty, Symbol.Set.empty)
        args
  | Tfapp (fv, args) ->
      List.fold_left
        (fun (vs, fs) a ->
          let vs', fs' = rhs_vars a in
          (Symbol.Set.union vs vs', Symbol.Set.union fs fs'))
        (Symbol.Set.empty, Symbol.Set.singleton fv)
        args

let rw ~name ?guard lhs rhs =
  let supported =
    (* A rule constructed with [?guard] opts into the guarded subset: its
       guards (rule-level and pattern-embedded) are evaluated by the
       [?guard_eval] the runner supplies. Without it, guards stay
       unsupported — there is no witness to evaluate them on. *)
    match guard with
    | Some _ -> Ematch.supported_guarded lhs
    | None -> Ematch.supported lhs
  in
  match supported with
  | Error e -> Error (Printf.sprintf "rewrite %s: %s" name e)
  | Ok () ->
      let vs, fs = rhs_vars rhs in
      let unbound_v =
        Symbol.Set.diff vs (Pypm_pattern.Pattern.free_vars lhs)
      and unbound_f =
        Symbol.Set.diff fs (Pypm_pattern.Pattern.free_fvars lhs)
      in
      if not (Symbol.Set.is_empty unbound_v) then
        Error
          (Printf.sprintf
             "rewrite %s: template variable %s is not bound by the pattern"
             name
             (Symbol.Set.min_elt unbound_v))
      else if not (Symbol.Set.is_empty unbound_f) then
        Error
          (Printf.sprintf
             "rewrite %s: template operator variable %s is not bound by the \
              pattern"
             name
             (Symbol.Set.min_elt unbound_f))
      else
        Ok
          {
            rw_name = name;
            lhs;
            rhs;
            rw_guard = Option.value ~default:Guard.True guard;
          }

type stop_reason = Saturated | Iter_limit | Node_limit | Class_limit | Deadline

type stats = {
  iterations : int;
  applications : int;
  skipped_applications : int;
  saturated : bool;
  stop_reason : stop_reason;
  final_classes : int;
  final_nodes : int;
}

let stop_reason_name = function
  | Saturated -> "saturated"
  | Iter_limit -> "iter_limit"
  | Node_limit -> "node_limit"
  | Class_limit -> "class_limit"
  | Deadline -> "deadline"

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

(* [rw] checks the template against the pattern's free variables, but a
   disjunctive pattern binds only one branch's variables per match, so a
   template variable can still come up unbound for a particular
   assignment. That application is skipped (and counted), not fatal. *)
let rec instantiate g (env : Ematch.env) = function
  | Tvar x -> (
      match Symbol.Map.find_opt x env.Ematch.classes with
      | Some c -> Ok c
      | None -> Error x)
  | Tapp (op, args) ->
      let* cs = map_result (instantiate g env) args in
      Ok (Egraph.add g op cs)
  | Tfapp (fv, args) -> (
      match Symbol.Map.find_opt fv env.Ematch.ops with
      | Some op ->
          let* cs = map_result (instantiate g env) args in
          Ok (Egraph.add g op cs)
      | None -> Error fv)

(* Upward closure of the touched classes through the [uses] relation: a
   change inside class [d] can only create new matches rooted at [d] or at
   a class whose pattern walk reaches [d] — i.e. an ancestor. Sorted for
   determinism. *)
let affected g seeds =
  let seen : (Egraph.id, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec go id =
    let id = Egraph.find g id in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go (Egraph.parents_of g id)
    end
  in
  List.iter go seeds;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort Int.compare

let truncate n xs =
  if n < 0 then xs
  else
    let rec go k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: xs -> x :: go (k - 1) xs
    in
    go n xs

let run g rules ?(iter_limit = 30) ?(node_limit = max_int)
    ?(class_limit = max_int) ?(match_limit = -1)
    ?(deadline = fun () -> false) ?guard_eval ?on_iteration ?on_union () =
  (* Without an evaluator, only trivially-true guards pass: guarded rules
     fail closed rather than firing unsoundly. *)
  let eval =
    match guard_eval with
    | Some f -> f
    | None -> fun gd _ -> Guard.equal gd Guard.True
  in
  let applications = ref 0 and skipped = ref 0 in
  (* [i] counts rounds already executed. Budgets are checked {e before} a
     round; a round that runs to completion is always counted, so
     [iterations] = rounds executed and [saturated] is true iff the last
     executed round changed nothing — the limit/fixpoint distinction is
     exact even when they coincide. *)
  let rec loop i =
    if deadline () then (i, Deadline)
    else if Egraph.class_count g > class_limit then (i, Class_limit)
    else if Egraph.node_count g > node_limit then (i, Node_limit)
    else if i >= iter_limit then (i, Iter_limit)
    else begin
      Option.iter (fun f -> f (i + 1)) on_iteration;
      (* Seed this round's candidate roots from the change log: round one
         scans every class (the log only holds the initial population);
         later rounds rematch just the upward closure of what changed. *)
      let touched = Egraph.take_touched g in
      let roots = if i = 0 then Egraph.classes g else affected g touched in
      (* Collect all matches first (matching against a mutating e-graph
         would be order-dependent), then apply. *)
      let interrupted = ref false in
      let matches =
        List.concat_map
          (fun r ->
            if !interrupted || deadline () then (
              interrupted := true;
              [])
            else
              Ematch.matches_at ~guard:eval g r.lhs roots
              |> truncate match_limit
              |> List.map (fun (cls, env) -> (r, cls, env)))
          rules
      in
      if !interrupted then (i, Deadline)
      else begin
        let unions = ref 0 in
        let created0 = Egraph.created g in
        List.iter
          (fun (r, cls, env) ->
            if not (eval r.rw_guard env) then ()
            else
              match instantiate g env r.rhs with
              | Error _ -> incr skipped
              | Ok rhs_cls ->
                  let _, merged = Egraph.union g cls rhs_cls in
                  if merged then begin
                    incr applications;
                    incr unions;
                    Option.iter (fun f -> f r.rw_name) on_union
                  end)
          matches;
        ignore (Egraph.rebuild g);
        let changed = !unions > 0 || Egraph.created g > created0 in
        if changed then loop (i + 1) else (i + 1, Saturated)
      end
    end
  in
  let iterations, stop_reason = loop 0 in
  {
    iterations;
    applications = !applications;
    skipped_applications = !skipped;
    saturated = stop_reason = Saturated;
    stop_reason;
    final_classes = Egraph.class_count g;
    final_nodes = Egraph.node_count g;
  }

let simplify ~rules ?(cost = Egraph.size_cost) ?iter_limit t =
  let g = Egraph.create () in
  let root = Egraph.add_term g t in
  let stats = run g rules ?iter_limit () in
  match Egraph.extract g ~cost root with
  | Some best -> (best, stats)
  | None -> (t, stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d iteration(s), %d application(s)%s, %s, %d classes / %d nodes"
    s.iterations s.applications
    (if s.skipped_applications > 0 then
       Printf.sprintf " (%d skipped)" s.skipped_applications
     else "")
    (stop_reason_name s.stop_reason)
    s.final_classes s.final_nodes
