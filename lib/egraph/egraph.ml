open Pypm_term

type id = int

type enode = { op : Symbol.t; children : id list }

type t = {
  mutable parent : int array;  (* union-find *)
  mutable n : int;
  (* hashcons: canonical enode -> class id *)
  memo : (enode, id) Hashtbl.t;
  (* class id -> enodes (possibly stale children until rebuild) *)
  members : (id, enode list) Hashtbl.t;
  (* class id -> (parent enode, parent class) uses, for congruence repair *)
  uses : (id, (enode * id) list) Hashtbl.t;
  mutable dirty : id list;  (* classes whose uses need recanonicalizing *)
  mutable touched : id list;
      (* classes created or merged since the last [take_touched]: the
         change log dirty-class-driven rematching consumes *)
}

(* Typed comparator over canonicalized e-node views. The polymorphic
   [compare] happened to order these correctly while [Symbol.t] is a bare
   string, but it compares representations, not meanings — the same latent
   hazard PR 6 fixed in [Load.percentile]. Pin the intended order:
   operator first ([Symbol.compare]), then children ids left to right. *)
let compare_enode_view (op1, cs1) (op2, cs2) =
  match Symbol.compare op1 op2 with
  | 0 -> List.compare Int.compare cs1 cs2
  | c -> c

let create () =
  {
    parent = Array.make 16 0;
    n = 0;
    memo = Hashtbl.create 64;
    members = Hashtbl.create 64;
    uses = Hashtbl.create 64;
    dirty = [];
    touched = [];
  }

let rec find g x =
  let p = g.parent.(x) in
  if p = x then x
  else (
    let r = find g p in
    g.parent.(x) <- r;
    r)

let canonicalize g (e : enode) =
  { e with children = List.map (find g) e.children }

let fresh_class g =
  if g.n >= Array.length g.parent then (
    let bigger = Array.make (2 * Array.length g.parent) 0 in
    Array.blit g.parent 0 bigger 0 g.n;
    g.parent <- bigger);
  let id = g.n in
  g.parent.(id) <- id;
  g.n <- g.n + 1;
  id

let record_use g child use =
  let existing = Option.value ~default:[] (Hashtbl.find_opt g.uses child) in
  Hashtbl.replace g.uses child (use :: existing)

let add g op children =
  let e = canonicalize g { op; children } in
  match Hashtbl.find_opt g.memo e with
  | Some id -> find g id
  | None ->
      let id = fresh_class g in
      Hashtbl.replace g.memo e id;
      Hashtbl.replace g.members id [ e ];
      List.iter (fun c -> record_use g c (e, id)) e.children;
      g.touched <- id :: g.touched;
      id

let rec add_term g t = add g (Term.head t) (List.map (add_term g) (Term.args t))

let union g a b =
  let a = find g a and b = find g b in
  if a = b then (a, false)
  else begin
    (* keep the class with more uses as root (fewer re-canonicalizations) *)
    let uses_len x =
      List.length (Option.value ~default:[] (Hashtbl.find_opt g.uses x))
    in
    let root, child = if uses_len a >= uses_len b then (a, b) else (b, a) in
    g.parent.(child) <- root;
    (* merge member and use lists *)
    let m_root = Option.value ~default:[] (Hashtbl.find_opt g.members root) in
    let m_child = Option.value ~default:[] (Hashtbl.find_opt g.members child) in
    Hashtbl.replace g.members root (m_child @ m_root);
    Hashtbl.remove g.members child;
    let u_root = Option.value ~default:[] (Hashtbl.find_opt g.uses root) in
    let u_child = Option.value ~default:[] (Hashtbl.find_opt g.uses child) in
    Hashtbl.replace g.uses root (u_child @ u_root);
    Hashtbl.remove g.uses child;
    g.dirty <- root :: g.dirty;
    g.touched <- root :: g.touched;
    (root, true)
  end

(* Congruence repair: re-canonicalize the uses of merged classes; any two
   uses that become the same enode force their classes to merge too. *)
let rebuild g =
  let merges = ref 0 in
  let rec go () =
    match g.dirty with
    | [] -> ()
    | cls :: rest ->
        g.dirty <- rest;
        let cls = find g cls in
        let use_list = Option.value ~default:[] (Hashtbl.find_opt g.uses cls) in
        let seen : (enode, id) Hashtbl.t = Hashtbl.create 16 in
        let new_uses = ref [] in
        List.iter
          (fun (e, cid) ->
            let e' = canonicalize g e in
            let cid = find g cid in
            (* repair the hashcons entry *)
            (match Hashtbl.find_opt g.memo e' with
            | Some other ->
                let other = find g other in
                if other <> cid then (
                  let _, changed = union g other cid in
                  if changed then incr merges)
            | None -> Hashtbl.replace g.memo e' cid);
            (match Hashtbl.find_opt seen e' with
            | Some prev ->
                let prev = find g prev in
                let cid = find g cid in
                if prev <> cid then (
                  let _, changed = union g prev cid in
                  if changed then incr merges)
            | None -> Hashtbl.replace seen e' cid);
            new_uses := (e', find g cid) :: !new_uses)
          use_list;
        Hashtbl.replace g.uses (find g cls) !new_uses;
        go ()
  in
  go ();
  !merges

let equiv g a b = find g a = find g b

let nodes_of g id =
  let id = find g id in
  Option.value ~default:[] (Hashtbl.find_opt g.members id)
  |> List.map (fun e ->
         let e = canonicalize g e in
         (e.op, e.children))
  |> List.sort_uniq compare_enode_view

let classes g =
  List.init g.n Fun.id
  |> List.filter (fun i -> find g i = i && Hashtbl.mem g.members i)

let created g = g.n

(* Canonical ids of the classes an e-node of [id]'s class appears under —
   the upward step dirty-driven rematching follows. *)
let parents_of g id =
  let id = find g id in
  Option.value ~default:[] (Hashtbl.find_opt g.uses id)
  |> List.map (fun (_, cid) -> find g cid)
  |> List.sort_uniq Int.compare

let take_touched g =
  let t = g.touched in
  g.touched <- [];
  List.sort_uniq Int.compare (List.map (find g) t)

let class_count g = List.length (classes g)

let node_count g =
  List.fold_left (fun acc c -> acc + List.length (nodes_of g c)) 0 (classes g)

(* Bottom-up cost fixpoint: the cheapest known (total cost, e-node) per
   canonical class. The fixpoint only ever assigns costs built from
   already-costed children, so cyclic e-classes with no base term simply
   never enter the table — extraction terminates on any e-graph. The
   per-e-node [cost] callback runs once per e-node (memoized across
   sweeps: an e-node's own cost does not depend on the fixpoint state,
   only its children's totals do). *)
let extract_dag g ~cost root =
  let root = find g root in
  let all = classes g in
  let members =
    List.map
      (fun cls ->
        ( cls,
          List.map (fun (op, children) -> (op, children, cost cls op children))
            (nodes_of g cls) ))
      all
  in
  let best : (id, float * (Symbol.t * id list)) Hashtbl.t = Hashtbl.create 32 in
  let cost_of c = Option.map fst (Hashtbl.find_opt best (find g c)) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (cls, nodes) ->
        List.iter
          (fun (op, children, own) ->
            let child_costs = List.map cost_of children in
            if List.for_all Option.is_some child_costs then
              let total =
                own
                +. List.fold_left (fun a c -> a +. Option.get c) 0. child_costs
              in
              match Hashtbl.find_opt best cls with
              | Some (c, _) when c <= total -> ()
              | _ ->
                  Hashtbl.replace best cls (total, (op, children));
                  changed := true)
          nodes)
      members
  done;
  if Hashtbl.mem best root then Some best else None

(* Top-down reconstruction over the choice table. [build] is memoized per
   class: the chosen e-nodes form a DAG, and rebuilding shared children
   once keeps extraction linear (and the resulting term physically
   shared, which downstream term tables rely on). NOTE: on graphs with
   heavy sharing the term is small in memory but its tree unfolding is
   exponential — callers that go on to compare or hash it against terms
   from another DAG (no physical sharing between them) pay that
   unfolding. Graph-level callers should work from {!extract_dag}'s
   choice table directly instead. *)
let extract_enode g ~cost root =
  match extract_dag g ~cost root with
  | None -> None
  | Some best ->
      let memo : (id, Term.t option) Hashtbl.t = Hashtbl.create 32 in
      let rec build cls =
        let cls = find g cls in
        match Hashtbl.find_opt memo cls with
        | Some r -> r
        | None ->
            let r =
              match Hashtbl.find_opt best cls with
              | None -> None
              | Some (_, (op, children)) ->
                  let args = List.map build children in
                  if List.for_all Option.is_some args then
                    Some (Term.app op (List.map Option.get args))
                  else None
            in
            Hashtbl.replace memo cls r;
            r
      in
      build (find g root)

let extract g ~cost root = extract_enode g ~cost:(fun _ op _ -> cost op) root
let size_cost _ = 1.

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun cls ->
      Format.fprintf ppf "e%d:" cls;
      List.iter
        (fun (op, children) ->
          Format.fprintf ppf " %s(%s)" op
            (String.concat "," (List.map (Printf.sprintf "e%d") children)))
        (nodes_of g cls);
      Format.fprintf ppf "@,")
    (classes g);
  Format.fprintf ppf "@]"
