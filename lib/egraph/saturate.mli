(** Equality saturation: the nondestructive rewriting loop.

    Applies rewrite rules by {e adding} equalities to the e-graph instead
    of replacing subgraphs, then extracts the cheapest equivalent term —
    the egg-style baseline the paper contrasts PyPM with. Where the greedy
    destructive pass commits to the first rule that fires (and can destroy
    a redex a later rule needed), saturation keeps every version and lets
    extraction choose. [Pass.run ~engine:Egraph] runs this loop over a
    lowered graph region; the ablation bench runs both on the same
    inputs.

    Rematching is dirty-class-driven: each round after the first only
    re-enumerates matches rooted in the upward closure (through the e-graph
    [uses] relation) of the classes created or merged since the previous
    round, so saturation cost tracks change, not graph size. *)

open Pypm_term

(** A rewrite: a simple pattern (see {!Ematch.supported}) and a
    term-template right-hand side over the pattern's variables. Rules
    built with [?guard] may additionally carry a rule-level guard and
    pattern-embedded guards ({!Ematch.supported_guarded}); these are
    evaluated by the [?guard_eval] supplied to {!run}, and fail closed
    without one. *)
type rw = {
  rw_name : string;
  lhs : Pypm_pattern.Pattern.t;
  rhs : rhs;
  rw_guard : Pypm_pattern.Guard.t;  (** [Guard.True] when unguarded *)
}

and rhs =
  | Tvar of string  (** a matched e-class *)
  | Tapp of Symbol.t * rhs list
  | Tfapp of string * rhs list  (** apply the matched operator *)

(** [rw ~name ?guard lhs rhs] validates the rewrite: the pattern must be
    in the e-matchable subset ({!Ematch.supported}, or
    {!Ematch.supported_guarded} when [?guard] is given — passing [?guard],
    even [Guard.True], opts the rule into the guarded subset) and every
    template variable (term and operator) must be bound by the pattern.
    [Error reason] otherwise — construction never raises. *)
val rw :
  name:string ->
  ?guard:Pypm_pattern.Guard.t ->
  Pypm_pattern.Pattern.t ->
  rhs ->
  (rw, string) result

(** Why the loop stopped. [Saturated] is a proven fixpoint: the last
    executed round changed nothing. Every other reason is a budget. *)
type stop_reason = Saturated | Iter_limit | Node_limit | Class_limit | Deadline

val stop_reason_name : stop_reason -> string

type stats = {
  iterations : int;  (** rounds actually executed *)
  applications : int;  (** unions performed (new equalities) *)
  skipped_applications : int;
      (** matches whose template could not be instantiated (a disjunctive
          pattern bound only one branch's variables); skipped, not fatal *)
  saturated : bool;  (** [stop_reason = Saturated] *)
  stop_reason : stop_reason;
  final_classes : int;
  final_nodes : int;
}

(** [run g rules ()] saturates, or stops at the first exceeded budget.
    Deterministic for a fixed rule list and e-graph.

    Budgets: [iter_limit] (default 30) bounds rounds; [node_limit] /
    [class_limit] stop before a round once the e-graph outgrows them;
    [match_limit] caps matches taken per rule per round (negative =
    unlimited); [deadline] is polled between rounds and between rules —
    returning [true] stops matching immediately (the anytime cutoff
    [Pass] wires to [~deadline_s]).

    [guard_eval] decides guards against an assignment (the e-graph engine
    evaluates them on per-class witness terms); without it only
    [Guard.True] passes. [on_iteration] fires with the 1-based round
    number before each round's matching — the hook for re-canonicalizing
    any caller-side tables keyed by e-class id. [on_union] fires with the
    rule name after each successful union.

    The limit/fixpoint distinction is exact: [iterations] counts rounds
    executed, and [saturated] is true iff the final executed round changed
    nothing — reaching [iter_limit] with a no-change final round reports
    [Saturated], not [Iter_limit]. *)
val run :
  Egraph.t ->
  rw list ->
  ?iter_limit:int ->
  ?node_limit:int ->
  ?class_limit:int ->
  ?match_limit:int ->
  ?deadline:(unit -> bool) ->
  ?guard_eval:(Pypm_pattern.Guard.t -> Ematch.env -> bool) ->
  ?on_iteration:(int -> unit) ->
  ?on_union:(string -> unit) ->
  unit ->
  stats

(** [simplify ~rules ?cost t] is the end-to-end convenience: build an
    e-graph from [t], saturate, extract the cheapest equivalent (default
    cost: term size). *)
val simplify :
  rules:rw list -> ?cost:(Symbol.t -> float) -> ?iter_limit:int -> Term.t ->
  Term.t * stats

val pp_stats : Format.formatter -> stats -> unit
