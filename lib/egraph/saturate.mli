(** Equality saturation: the nondestructive rewriting loop.

    Applies rewrite rules by {e adding} equalities to the e-graph instead
    of replacing subgraphs, then extracts the cheapest equivalent term —
    the egg-style baseline the paper contrasts PyPM with. Where the greedy
    destructive pass commits to the first rule that fires (and can destroy
    a redex a later rule needed), saturation keeps every version and lets
    extraction choose. The ablation bench runs both on the same inputs. *)

open Pypm_term

(** A rewrite: a simple pattern (see {!Ematch.supported}) and a
    term-template right-hand side over the pattern's variables. *)
type rw = {
  rw_name : string;
  lhs : Pypm_pattern.Pattern.t;
  rhs : rhs;
}

and rhs =
  | Tvar of string  (** a matched e-class *)
  | Tapp of Symbol.t * rhs list
  | Tfapp of string * rhs list  (** apply the matched operator *)

(** [rw ~name lhs rhs] validates the rewrite: the pattern must be in the
    e-matchable subset ({!Ematch.supported}) and every template variable
    (term and operator) must be bound by the pattern. [Error reason]
    otherwise — construction never raises. *)
val rw :
  name:string -> Pypm_pattern.Pattern.t -> rhs -> (rw, string) result

type stats = {
  iterations : int;
  applications : int;  (** unions performed (new equalities) *)
  skipped_applications : int;
      (** matches whose template could not be instantiated (a disjunctive
          pattern bound only one branch's variables); skipped, not fatal *)
  saturated : bool;  (** no rule added anything new *)
  final_classes : int;
  final_nodes : int;
}

(** [run g rules ?iter_limit ()] saturates (or stops at [iter_limit],
    default 30). Deterministic. *)
val run : Egraph.t -> rw list -> ?iter_limit:int -> unit -> stats

(** [simplify ~rules ?cost t] is the end-to-end convenience: build an
    e-graph from [t], saturate, extract the cheapest equivalent (default
    cost: term size). *)
val simplify :
  rules:rw list -> ?cost:(Symbol.t -> float) -> ?iter_limit:int -> Term.t ->
  Term.t * stats

val pp_stats : Format.formatter -> stats -> unit
