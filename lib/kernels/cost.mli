(** The analytic GPU cost model.

    Substitute for running on the paper's RTX A6000: each node is charged
    [launches * launch_overhead + max(compute_time, memory_time)], a
    roofline with per-kernel efficiency. Naive (unfused) graphs pay one
    launch and full input/output DRAM traffic per operator; library and
    JIT-fused kernels pay one launch for the whole region and no
    intermediate traffic — exactly the effect the paper's FMHA and Epilog
    rewrites exploit. Only cost {e ratios} matter for reproducing the
    figures; the constants are loosely A6000-shaped. *)

open Pypm_graph
open Pypm_tensor

type device = {
  dname : string;
  fp32_flops : float;  (** peak, flop/s *)
  fp16_flops : float;
  int8_ops : float;
  mem_bw : float;  (** bytes/s *)
  launch_overhead : float;  (** seconds per kernel launch *)
}

(** Loosely an NVIDIA RTX A6000: 38.7 TFLOP/s fp32, 77.4 fp16,
    309.7 TOPS int8, 768 GB/s, 5 us launch overhead. *)
val a6000 : device

(** Loosely an NVIDIA A100-SXM: 19.5 TFLOP/s fp32 (no tensor cores for
    plain fp32), 312 fp16, 624 TOPS int8, 2039 GB/s, 4 us launch. Used by
    the sensitivity ablation: relative speedups should be stable across
    device profiles. *)
val a100 : device

(** Abstract work of one node. *)
type work = {
  flops : float;
  bytes : float;  (** DRAM traffic: inputs + output + intermediates *)
  launches : float;
  efficiency : float;  (** fraction of peak the implementation reaches *)
}

val zero_work : work

(** [op_work g op ~ins ~out ~attrs] is the type-level core of the model:
    classifies [op] by (1) the kernel registry, (2) fused region
    attributes, (3) its operator class, charging work determined entirely
    by the input/output types. Inputs/constants cost nothing; untyped
    (opaque) compute is charged a nominal launch. The e-graph engine costs
    e-classes through this — they have types but no node. *)
val op_work :
  Graph.t ->
  Pypm_term.Symbol.t ->
  ins:Ty.t option list ->
  out:Ty.t option ->
  attrs:(string * int) list ->
  work

(** [node_work g n] is {!op_work} on a materialized node. *)
val node_work : Graph.t -> Graph.node -> work

(** [seconds device ~dtype w] is the roofline time of [w]. *)
val seconds : device -> dtype:Dtype.t -> work -> float

(** [op_cost device g op ~ins ~out ~attrs] combines {!op_work} and
    {!seconds} (dtype taken from [out], F32 when untyped). *)
val op_cost :
  device ->
  Graph.t ->
  Pypm_term.Symbol.t ->
  ins:Ty.t option list ->
  out:Ty.t option ->
  attrs:(string * int) list ->
  float

(** [node_cost device g n] is {!op_cost} on a materialized node. *)
val node_cost : device -> Graph.t -> Graph.node -> float

(** [flops_of_nodes g ns] sums naive flops over nodes; used to annotate
    JIT-fused regions. *)
val flops_of_nodes : Graph.t -> Graph.node list -> float

(** Attributes to store on a JIT-fused region node so the cost model can
    charge it: [("flops", total interior flops)]. *)
val fused_attrs : Graph.t -> Graph.node list -> (string * int) list
