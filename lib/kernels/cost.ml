open Pypm_term
open Pypm_graph
open Pypm_tensor

type device = {
  dname : string;
  fp32_flops : float;
  fp16_flops : float;
  int8_ops : float;
  mem_bw : float;
  launch_overhead : float;
}

let a6000 =
  {
    dname = "RTX-A6000";
    fp32_flops = 38.7e12;
    fp16_flops = 77.4e12;
    int8_ops = 309.7e12;
    mem_bw = 768.e9;
    launch_overhead = 5.0e-6;
  }

let a100 =
  {
    dname = "A100-SXM";
    fp32_flops = 19.5e12;
    fp16_flops = 312.e12;
    int8_ops = 624.e12;
    mem_bw = 2039.e9;
    launch_overhead = 4.0e-6;
  }

type work = {
  flops : float;
  bytes : float;
  launches : float;
  efficiency : float;
}

let zero_work = { flops = 0.; bytes = 0.; launches = 0.; efficiency = 1. }

(* The core of the model is type-level: an operator, its input/output
   types, and its attributes determine the work. Node-level entry points
   project a [Graph.node] down to that; the e-graph engine calls the
   type-level entry points directly, on e-classes that have no node. *)

let bytes_of_ty = function
  | Some ty -> float_of_int (Ty.size_bytes ty)
  | None -> 0.

let io_bytes_tys (ins : Ty.t option list) (out : Ty.t option) =
  List.fold_left (fun acc t -> acc +. bytes_of_ty t) (bytes_of_ty out) ins

let out_nelems_ty = function
  | Some ty -> float_of_int (Ty.nelems ty)
  | None -> 0.

let node_tys (n : Graph.node) =
  (List.map (fun (i : Graph.node) -> i.ty) n.inputs, n.ty)

(* Naive-implementation efficiencies by operator family. Hand-tuned library
   kernels carry their own (higher) efficiency in their spec. *)
let naive_eff_matmul = 0.55
let naive_eff_conv = 0.50
let naive_eff_pointwise = 0.90
let jit_fused_eff = 0.75

let class_work_tys cls ~(ins : Ty.t option list) ~(out : Ty.t option) ~attrs =
  let bytes = io_bytes_tys ins out in
  let known = List.filter_map Fun.id ins in
  let one flops efficiency = { flops; bytes; launches = 1.; efficiency } in
  match cls with
  | "input" | "const" -> zero_work
  | "opaque" when ins = [] -> zero_work
  | "matmul" | "linear" -> (
      match (known, out) with
      | tys, Some o -> one (Kernel.matmul_flops tys o) naive_eff_matmul
      | _ -> { zero_work with launches = 1. })
  | "conv" -> (
      match (known, out) with
      | (_ :: (w : Ty.t) :: _), Some o ->
          let kernel_work =
            match w.shape with
            | [ _o; c; kh; kw ] -> float_of_int (c * kh * kw)
            | _ -> 1.
          in
          one (2. *. float_of_int (Ty.nelems o) *. kernel_work) naive_eff_conv
      | _ -> { zero_work with launches = 1. })
  | "softmax" ->
      (* multi-pass: max, exp-sum, divide *)
      {
        flops = 5. *. out_nelems_ty out;
        bytes = 3. *. bytes;
        launches = 1.;
        efficiency = naive_eff_pointwise;
      }
  | "transpose" | "layout" ->
      (* pure data movement *)
      one 0. 1.
  | "reduce" | "pool" -> one (out_nelems_ty out *. 4.) naive_eff_pointwise
  | "unary_pointwise" | "binary_pointwise" | "nary_pointwise" ->
      one (out_nelems_ty out) naive_eff_pointwise
  | "fused" ->
      (* JIT-fused region: interior flops recorded at fuse time; traffic is
         region inputs + output only; one launch. *)
      let flops =
        match List.assoc_opt "flops" attrs with
        | Some f -> float_of_int f
        | None -> out_nelems_ty out
      in
      { flops; bytes; launches = 1.; efficiency = jit_fused_eff }
  | _ ->
      (* unknown but typed compute: charge pointwise-ish work *)
      one (out_nelems_ty out) naive_eff_pointwise

let op_work g op ~(ins : Ty.t option list) ~(out : Ty.t option) ~attrs =
  match Kernel.find op with
  | Some spec -> (
      match out with
      | Some o ->
          let known = List.filter_map Fun.id ins in
          {
            flops = spec.Kernel.flops known o;
            bytes =
              io_bytes_tys ins out +. spec.Kernel.intermediate_bytes known o;
            launches = float_of_int spec.Kernel.launches;
            efficiency = spec.Kernel.efficiency;
          }
      | None -> { zero_work with launches = 1. })
  | None -> (
      match Signature.op_class (Graph.signature g) op with
      | Some cls -> class_work_tys cls ~ins ~out ~attrs
      | None -> { zero_work with launches = 1. })

let node_work g (n : Graph.node) =
  let ins, out = node_tys n in
  op_work g n.op ~ins ~out ~attrs:n.attrs

let peak device (dtype : Dtype.t) =
  match dtype with
  | F64 -> device.fp32_flops /. 2.
  | F32 -> device.fp32_flops
  | F16 | BF16 -> device.fp16_flops
  | I8 | Bool -> device.int8_ops
  | I64 | I32 -> device.fp32_flops

let seconds device ~dtype w =
  if w.launches = 0. && w.flops = 0. && w.bytes = 0. then 0.
  else
    let compute = w.flops /. (w.efficiency *. peak device dtype) in
    let memory = w.bytes /. device.mem_bw in
    (w.launches *. device.launch_overhead) +. Float.max compute memory

let op_cost device g op ~ins ~out ~attrs =
  let dtype = match out with Some ty -> ty.Ty.dtype | None -> Dtype.F32 in
  seconds device ~dtype (op_work g op ~ins ~out ~attrs)

let node_cost device g (n : Graph.node) =
  let ins, out = node_tys n in
  op_cost device g n.op ~ins ~out ~attrs:n.attrs

let flops_of_nodes g ns =
  List.fold_left (fun acc n -> acc +. (node_work g n).flops) 0. ns

let fused_attrs g interior =
  [ ("flops", int_of_float (flops_of_nodes g interior)) ]
