open Pypm_term
open Pypm_tensor

type spec = {
  kname : Symbol.t;
  flops : Ty.t list -> Ty.t -> float;
  efficiency : float;
  launches : int;
  intermediate_bytes : Ty.t list -> Ty.t -> float;
}

let no_intermediate _ _ = 0.

let make ?(efficiency = 0.85) ?(launches = 1)
    ?(intermediate_bytes = no_intermediate) ~flops kname =
  { kname; flops; efficiency; launches; intermediate_bytes }

(* The registry is process-global and [Std_ops.make] re-registers specs on
   every call; server workers and load-harness clients build environments
   from their own domains, so all access goes through one mutex (a bare
   Hashtbl.replace race can corrupt the table). *)
let registry : (Symbol.t, spec) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()
let locked f = Mutex.protect registry_mutex f

let register spec = locked (fun () -> Hashtbl.replace registry spec.kname spec)
let find name = locked (fun () -> Hashtbl.find_opt registry name)
let mem name = locked (fun () -> Hashtbl.mem registry name)

let registered () =
  locked (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let innermost_dim (ty : Ty.t) =
  match List.rev ty.shape with d :: _ -> d | [] -> 1

let matmul_flops inputs out =
  let k = match inputs with a :: _ -> innermost_dim a | [] -> 1 in
  2. *. float_of_int (Ty.nelems out) *. float_of_int k

let pointwise_flops ?(per_elem = 1.) _inputs out =
  per_elem *. float_of_int (Ty.nelems out)

let mha_flops inputs out =
  (* Q, K, V : [batch...; seq; head_dim]; out mirrors Q. Work: QK^T is
     2*seq^2*d, PV is 2*seq^2*d, softmax ~5*seq^2, per batch row. *)
  match inputs with
  | (q : Ty.t) :: _ -> (
      match List.rev q.shape with
      | d :: s :: batch_rev ->
          let batch = List.fold_left ( * ) 1 batch_rev in
          float_of_int batch
          *. ((4. *. float_of_int (s * s * d)) +. (5. *. float_of_int (s * s)))
      | _ -> float_of_int (Ty.nelems out))
  | [] -> float_of_int (Ty.nelems out)
