module Txn = Pypm_graph.Graph.Txn
module Obs = Pypm_obs.Obs

(* ------------------------------------------------------------------ *)
(* Per-pattern circuit breaker                                         *)
(* ------------------------------------------------------------------ *)

module Breaker = struct
  type t = { threshold : int; mutable strikes : int; mutable tripped : bool }

  let create ~threshold =
    if threshold <= 0 then
      invalid_arg "Resilience.Breaker.create: threshold must be > 0";
    { threshold; strikes = 0; tripped = false }

  let strike b =
    if b.tripped then false
    else (
      b.strikes <- b.strikes + 1;
      if b.strikes >= b.threshold then (
        b.tripped <- true;
        true)
      else false)

  let tripped b = b.tripped
  let strikes b = b.strikes
  let threshold b = b.threshold

  let reset b =
    b.strikes <- 0;
    b.tripped <- false
end

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)
(* ------------------------------------------------------------------ *)

module Inject = struct
  type point =
    | Instantiate_fail
    | Guard_raise
    | Fuel_cut
    | Replace_cycle
    | Plan_compile
    | Worker_crash
    | Serve_stall
    | Wire_partial
    | Wire_corrupt
    | Wire_stall
    | Wire_disconnect

  exception Injected_crash of string

  let all_points =
    [
      Instantiate_fail;
      Guard_raise;
      Fuel_cut;
      Replace_cycle;
      Plan_compile;
      Worker_crash;
    ]

  let wire_points = [ Wire_partial; Wire_corrupt; Wire_stall; Wire_disconnect ]

  let point_name = function
    | Instantiate_fail -> "instantiate-fail"
    | Guard_raise -> "guard-raise"
    | Fuel_cut -> "fuel-cut"
    | Replace_cycle -> "replace-cycle"
    | Plan_compile -> "plan-compile"
    | Worker_crash -> "worker-crash"
    | Serve_stall -> "serve-stall"
    | Wire_partial -> "wire-partial"
    | Wire_corrupt -> "wire-corrupt"
    | Wire_stall -> "wire-stall"
    | Wire_disconnect -> "wire-disconnect"

  let point_of_name = function
    | "instantiate-fail" -> Some Instantiate_fail
    | "guard-raise" -> Some Guard_raise
    | "fuel-cut" -> Some Fuel_cut
    | "replace-cycle" -> Some Replace_cycle
    | "plan-compile" -> Some Plan_compile
    | "worker-crash" -> Some Worker_crash
    | "serve-stall" -> Some Serve_stall
    | "wire-partial" -> Some Wire_partial
    | "wire-corrupt" -> Some Wire_corrupt
    | "wire-stall" -> Some Wire_stall
    | "wire-disconnect" -> Some Wire_disconnect
    | _ -> None

  (* SplitMix64 step, same constants as the fuzzer's Srng: the schedule is
     a deterministic function of (seed, query sequence) alone, so any
     fault pattern replays exactly from its seed. Duplicated here (rather
     than depending on pypm_fuzz) because the fuzzer depends on the engine,
     which depends on this library. *)
  let mix64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  [@@ocamlformat "disable"]

  let golden_gamma = 0x9e3779b97f4a7c15L

  type schedule = {
    mutable state : int64;
    rate : float;  (** probability each armed query fires, in [0, 1] *)
    points : point list;  (** armed points; queries on others never fire *)
    max_fires : int option;  (** stop firing after this many, if set *)
    mutable fired : int;
    mutable queried : int;
  }

  let none =
    {
      state = 0L;
      rate = 0.;
      points = [];
      max_fires = Some 0;
      fired = 0;
      queried = 0;
    }

  let seeded ?(points = all_points) ?max_fires ~seed ~rate () =
    if rate < 0. || rate > 1. then
      invalid_arg "Resilience.Inject.seeded: rate must be in [0, 1]";
    {
      state = Int64.of_int seed;
      rate;
      points;
      max_fires;
      fired = 0;
      queried = 0;
    }

  (* Uniform float in [0, 1) from the top 53 bits of the next output. *)
  let next_unit s =
    s.state <- Int64.add s.state golden_gamma;
    let bits = Int64.shift_right_logical (mix64 s.state) 11 in
    Int64.to_float bits *. (1. /. 9007199254740992.)

  let is_active s = s.rate > 0. && s.points <> []

  let fires s point =
    if s.rate = 0. || not (List.mem point s.points) then false
    else begin
      s.queried <- s.queried + 1;
      let budget_left =
        match s.max_fires with None -> true | Some m -> s.fired < m
      in
      let fire = budget_left && next_unit s < s.rate in
      if fire then (
        s.fired <- s.fired + 1;
        Obs.emit (Obs.Fault_injected { point = point_name point }));
      fire
    end

  let fired s = s.fired
  let queried s = s.queried

  (* The next uniform draw from the schedule's stream, independent of any
     point's arming. The chaos harness uses it to pick fault positions
     (which byte to corrupt, where to tear a frame) and the load client to
     jitter its backoff — all deterministic replays of the seed. *)
  let roll s = next_unit s
end
