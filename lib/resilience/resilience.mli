(** Resilience primitives for the rewrite engine.

    Production rewrite engines treat every rewrite as an all-or-nothing
    transaction under explicit resource budgets (cf. egg's bounded
    saturation and TASO's verified-substitution discipline). This library
    collects the mechanisms the pass uses to survive misbehaving rules,
    patterns and engines without corrupting the graph or aborting the
    process:

    - {!Txn} — the graph mutation journal ({!Pypm_graph.Graph.Txn}
      re-exported): a failed rule firing rolls the graph back to its
      pre-attempt state instead of leaking orphan nodes or raising;
    - {!Breaker} — the per-pattern circuit breaker: a pattern whose
      attempts repeatedly exhaust fuel or whose rules repeatedly error is
      quarantined for the remainder of the pass;
    - {!Inject} — deterministic, seeded fault injection: the pass threads
      a schedule through its failure points so the fuzzer can prove that
      {e any} fault pattern leaves the graph valid and every rollback
      exact.

    The degradation ladder (Plan → Index → Naive on engine-preparation
    failure) lives in {!Pypm_engine.Pass} itself; its obs events
    ([Engine_degraded]) and the fault point that tests it
    ({!Inject.point.Plan_compile}) are defined here and in {!Pypm_obs}. *)

(** The graph transaction journal. See {!Pypm_graph.Graph.Txn}. *)
module Txn = Pypm_graph.Graph.Txn

(** Per-pattern circuit breaker: counts strikes (fuel exhaustions, rule
    errors, cycle rejections) and trips permanently at a threshold. *)
module Breaker : sig
  type t

  (** [create ~threshold] trips after [threshold] strikes ([> 0]). *)
  val create : threshold:int -> t

  (** Record one strike. Returns [true] exactly once: on the strike that
      trips the breaker. Strikes after the trip are ignored. *)
  val strike : t -> bool

  val tripped : t -> bool
  val strikes : t -> int
  val threshold : t -> int

  (** Re-arm (new pass over the same program). *)
  val reset : t -> unit
end

(** Deterministic fault injection.

    A {!Inject.schedule} is a seeded SplitMix64 stream queried at each of
    the pass's failure points; whether a given query fires is a pure
    function of the seed and the query sequence, so any observed fault
    pattern replays exactly ([pypmc optimize --fault-seed N]). Every fire
    emits an {!Pypm_obs.Obs.kind.Fault_injected} event. *)
module Inject : sig
  (** Where a fault can be injected:
      - [Instantiate_fail]: {!Pypm_engine.Rule.instantiate} returns
        [Error] after the pattern matched;
      - [Guard_raise]: guard evaluation raises mid-firing;
      - [Fuel_cut]: the match attempt's fuel is cut to 1, forcing
        out-of-fuel;
      - [Replace_cycle]: the replacement is treated as if it would close
        a cycle;
      - [Plan_compile]: engine preparation fails, exercising the
        degradation ladder;
      - [Worker_crash]: a serve worker domain dies mid-job, exercising
        the pool supervisor (restart, retry, poison-pill quarantine);
      - [Serve_stall]: the worker stalls mid-job long enough to trip the
        server's per-job deadline watchdog;
      - [Wire_partial], [Wire_corrupt], [Wire_stall], [Wire_disconnect]:
        client-side wire chaos — torn frames, flipped bytes, mid-frame
        delays and mid-request disconnects, driven through the
        {!Pypm_serve.Chaos} fd wrapper. *)
  type point =
    | Instantiate_fail
    | Guard_raise
    | Fuel_cut
    | Replace_cycle
    | Plan_compile
    | Worker_crash
    | Serve_stall
    | Wire_partial
    | Wire_corrupt
    | Wire_stall
    | Wire_disconnect

  (** Raised by the serve layer when a [Worker_crash] fault fires; the
      worker's catch-all deliberately re-raises it so the exception
      escapes the job handler and kills the worker domain, exactly like
      an unanticipated crash would. *)
  exception Injected_crash of string

  (** The default arming: the five pass-level points plus [Worker_crash].
      [Serve_stall] (slow by design) and the wire points (client-side)
      must be armed by name. *)
  val all_points : point list

  (** The client-side wire fault points, for the chaos harness. *)
  val wire_points : point list

  val point_name : point -> string
  val point_of_name : string -> point option

  type schedule

  (** The empty schedule: never fires, never advances. The default. *)
  val none : schedule

  (** [seeded ~seed ~rate ()] fires each armed query with probability
      [rate] (in [[0, 1]]), deterministically from [seed]. [points]
      restricts which failure points are armed (default: all);
      [max_fires] caps the total number of injected faults. *)
  val seeded :
    ?points:point list -> ?max_fires:int -> seed:int -> rate:float -> unit ->
    schedule

  (** [fires s point] decides (and records) whether the fault at [point]
      fires now. Advances the stream iff [point] is armed and the
      schedule's rate is nonzero. *)
  val fires : schedule -> point -> bool

  (** Whether this schedule can ever fire ([rate > 0] with at least one
      armed point). The sharded pass checks this: a fault stream is
      consumed in query order, so an active schedule forces the
      sequential (single-domain) path to keep replay deterministic. *)
  val is_active : schedule -> bool

  (** Faults fired so far. *)
  val fired : schedule -> int

  (** Armed queries made so far. *)
  val queried : schedule -> int

  (** The next uniform draw in [[0, 1)] from the schedule's stream,
      independent of arming — deterministic side-band randomness for the
      chaos harness (fault positions) and the load client (backoff
      jitter). *)
  val roll : schedule -> float
end
