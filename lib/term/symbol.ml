type t = string

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string

module Map = Map.Make (String)
module Set = Set.Make (String)

(* Atomic: graphs are built concurrently by server workers and load-harness
   clients (OCaml 5 domains); a torn increment would mint duplicate
   "fresh" symbols and silently alias unrelated graph inputs. *)
let counter = Atomic.make 0

let fresh ?(prefix = "sym") () =
  Printf.sprintf "%s%%%d" prefix (Atomic.fetch_and_add counter 1 + 1)
