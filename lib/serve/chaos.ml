module Protocol = Pypm_serialize.Protocol
module Codec = Pypm_serialize.Codec
module Std_ops = Pypm_patterns.Std_ops
module Transformer = Pypm_models.Transformer
module Obs = Pypm_obs.Obs
module Inject = Pypm_resilience.Resilience.Inject

type report = {
  schedules : int;
  requests : int;
  ok : int;
  faults : int;
  structured : int;
  closes : int;
  desyncs : int;
  crash_drills : int;
  bursts : int;
  violations : string list;
}

let pp ppf r =
  Format.fprintf ppf
    "@[<v>chaos: %d schedule(s), %d request(s): %d ok, %d wire fault(s) \
     (%d structured answer(s), %d close(s), %d desync(s))@,\
     %d crash drill(s), %d pipelined burst(s), %d violation(s)%s@]"
    r.schedules r.requests r.ok r.faults r.structured r.closes r.desyncs
    r.crash_drills r.bursts
    (List.length r.violations)
    (if r.violations = [] then ""
     else ":\n  " ^ String.concat "\n  " r.violations)

(* ------------------------------------------------------------------ *)
(* Chaos client plumbing                                               *)
(* ------------------------------------------------------------------ *)

exception Await_timeout
exception Closed

type cconn = { fd : Unix.file_descr; reader : Protocol.Reader.t }

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Protocol.Reader.create () }

let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

(* Read one response frame under a deadline. [Await_timeout] is not a
   property violation by itself: a torn or length-corrupted frame
   legitimately leaves the server awaiting bytes that will never come —
   the client abandons the desynchronized connection. [Closed] is the
   server's sticky-error close: clean, expected, counted. *)
let read_response c ~timeout_s =
  let deadline = Obs.monotonic () +. timeout_s in
  let buf = Bytes.create 65536 in
  let rec go () =
    match Protocol.Reader.next c.reader with
    | `Frame payload -> Protocol.decode_response payload
    | `Error msg -> Error ("client-side frame error: " ^ msg)
    | `Await ->
        let remaining = deadline -. Obs.monotonic () in
        if remaining <= 0. then raise Await_timeout;
        let readable =
          match Unix.select [ c.fd ] [] [] remaining with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        if readable = [] then raise Await_timeout;
        (match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> raise Closed
        | n -> Protocol.Reader.feed c.reader (Bytes.sub_string buf 0 n)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            raise Closed);
        go ()
  in
  go ()

(* The wire-fault application point: what a hostile client or a flaky
   transport does to one outbound frame. The fault choice and every
   position within the frame come from the schedule's deterministic
   stream, so a failing seed replays exactly. *)
type applied = Intact | Torn | Corrupted | Disconnected

let cut_point sched s =
  (* at least 1 byte so the server definitely commits to the frame, and
     strictly short so the frame is genuinely torn *)
  let n = String.length s in
  1 + int_of_float (Inject.roll sched *. float_of_int (max 1 (n - 1)))

let send_frame sched c payload =
  let frame = Protocol.frame payload in
  if Inject.fires sched Inject.Wire_disconnect then begin
    let cut = min (String.length frame - 1) (cut_point sched frame) in
    (try write_all c.fd (String.sub frame 0 cut)
     with Unix.Unix_error _ -> ());
    disconnect c;
    Disconnected
  end
  else if Inject.fires sched Inject.Wire_partial then begin
    let cut = min (String.length frame - 1) (cut_point sched frame) in
    (try write_all c.fd (String.sub frame 0 cut)
     with Unix.Unix_error _ -> ());
    Torn
  end
  else if Inject.fires sched Inject.Wire_corrupt then begin
    let b = Bytes.of_string frame in
    let pos = int_of_float (Inject.roll sched *. float_of_int (Bytes.length b)) in
    let pos = min (Bytes.length b - 1) pos in
    let flip = 1 + int_of_float (Inject.roll sched *. 254.) in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
    (try write_all c.fd (Bytes.to_string b) with Unix.Unix_error _ -> ());
    Corrupted
  end
  else if Inject.fires sched Inject.Wire_stall then begin
    let half = String.length frame / 2 in
    (try
       write_all c.fd (String.sub frame 0 half);
       Unix.sleepf 0.005;
       write_all c.fd (String.sub frame half (String.length frame - half))
     with Unix.Unix_error _ -> ());
    Intact
  end
  else begin
    (try write_all c.fd frame with Unix.Unix_error _ -> ());
    Intact
  end

(* ------------------------------------------------------------------ *)
(* The property harness                                                *)
(* ------------------------------------------------------------------ *)

type st = {
  mutable requests : int;
  mutable ok : int;
  mutable faults : int;
  mutable structured : int;
  mutable closes : int;
  mutable desyncs : int;
  mutable crash_drills : int;
  mutable bursts : int;
  mutable violations : string list;
  (* variant -> the Result body every later answer must match byte for
     byte: the determinism half of the property (warm == cold == every
     schedule) *)
  expected : (int, string) Hashtbl.t;
}

let violate st fmt =
  Printf.ksprintf
    (fun msg -> if List.length st.violations < 50 then
        st.violations <- msg :: st.violations)
    fmt

let graphs ~variants =
  let env = Std_ops.make () in
  Array.init variants (fun i ->
      let cfg =
        Transformer.config ~layers:1 ~hidden:32 ~heads:2 ~seq:8 ~batch:1
          ~activation:(Transformer.Act_gelu Transformer.Div_two)
          ~seed:(9000 + i)
          (Printf.sprintf "chaos-%d" i)
      in
      Codec.Graphs.encode (Transformer.build env cfg))

let optimize ~id ~variant ~graphs ?(options = Protocol.default_options) () =
  ( Protocol.encode_request
      (Protocol.Optimize
         {
           id;
           program = Protocol.Named "both";
           options;
           graph = graphs.(variant);
         }),
    variant )

(* Answer bookkeeping for an intact request that must be served. *)
let check_result st ~who ~id ~variant resp =
  match resp with
  | Ok (Protocol.Result { id = rid; body; _ }) ->
      if rid <> id then
        violate st "%s: response id %d for request id %d" who rid id;
      (match Hashtbl.find_opt st.expected variant with
      | None -> Hashtbl.replace st.expected variant body
      | Some prior ->
          if not (String.equal prior body) then
            violate st "%s: variant %d result body diverged across schedules"
              who variant);
      st.ok <- st.ok + 1
  | Ok (Protocol.Overloaded _ | Protocol.Draining _) ->
      (* flow control: legal, just not countable as served *)
      st.structured <- st.structured + 1
  | Ok other ->
      violate st "%s: unexpected response %d to a clean optimize" who
        (Protocol.response_id other)
  | Error msg -> violate st "%s: undecodable response: %s" who msg

(* One fresh-connection clean request that must be served: the liveness
   probe run after every fault event — if the fault hurt the server,
   this is where it shows. *)
let clean_roundtrip st ~who ~socket ~graphs ~variant ~id =
  match connect socket with
  | exception Unix.Unix_error (e, _, _) ->
      violate st "%s: server not accepting connections: %s" who
        (Unix.error_message e)
  | c ->
      Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
      let payload, _ = optimize ~id ~variant ~graphs () in
      st.requests <- st.requests + 1;
      (try write_all c.fd (Protocol.frame payload)
       with Unix.Unix_error (e, _, _) ->
         violate st "%s: write to live server failed: %s" who
           (Unix.error_message e));
      (match read_response c ~timeout_s:10. with
      | resp -> check_result st ~who ~id ~variant resp
      | exception Await_timeout ->
          violate st "%s: clean request %d timed out" who id
      | exception Closed ->
          violate st "%s: server closed a clean connection" who)

(* A faulted request: any decodable response or a clean close is
   acceptable; a response that fails to decode, or a crash of the
   server, is not. *)
let faulted_followup st ~who c =
  (* short: a local server that will answer does so in well under this;
     a desynchronized one never will, and 500-schedule sweeps cannot
     afford to wait long to learn that *)
  match read_response c ~timeout_s:0.1 with
  | Ok _ -> st.structured <- st.structured + 1
  | Error msg -> violate st "%s: mangled server response: %s" who msg
  | exception Await_timeout -> st.desyncs <- st.desyncs + 1
  | exception Closed -> st.closes <- st.closes + 1

(* The poison-pill drill: a request whose options arm the worker-crash
   point at rate 1.0 must crash two workers, come back as a structured
   [Worker_crashed], and leave the server able to serve the very next
   request on the same connection. *)
let crash_drill st ~socket ~graphs ~schedule_i =
  let who = Printf.sprintf "schedule %d (crash drill)" schedule_i in
  st.crash_drills <- st.crash_drills + 1;
  match connect socket with
  | exception Unix.Unix_error (e, _, _) ->
      violate st "%s: connect failed: %s" who (Unix.error_message e)
  | c -> (
      Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
      let options =
        {
          Protocol.default_options with
          fault_seed = schedule_i;
          fault_rate = 1.0;
          fault_points = [ "worker-crash" ];
        }
      in
      let payload, _ =
        optimize ~id:7001 ~variant:(schedule_i mod 2) ~graphs ~options ()
      in
      st.requests <- st.requests + 1;
      write_all c.fd (Protocol.frame payload);
      (match read_response c ~timeout_s:10. with
      | Ok (Protocol.Worker_crashed { id = 7001; _ }) -> ()
      | Ok other ->
          violate st "%s: expected Worker_crashed, got response %d" who
            (Protocol.response_id other)
      | Error msg -> violate st "%s: undecodable response: %s" who msg
      | exception Await_timeout ->
          violate st "%s: poison pill never answered" who
      | exception Closed -> violate st "%s: connection closed" who);
      (* the same connection must serve again: supervision restarted the
         crashed workers *)
      let payload, variant =
        optimize ~id:7002 ~variant:((schedule_i + 1) mod 2) ~graphs ()
      in
      st.requests <- st.requests + 1;
      write_all c.fd (Protocol.frame payload);
      (match read_response c ~timeout_s:10. with
      | resp -> check_result st ~who ~id:7002 ~variant resp
      | exception Await_timeout ->
          violate st "%s: post-crash request timed out" who
      | exception Closed ->
          violate st "%s: connection closed after poison pill" who);
      (* and the supervisor must admit to the restarts *)
      write_all c.fd
        (Protocol.frame (Protocol.encode_request (Protocol.Health { id = 7003 })));
      match read_response c ~timeout_s:10. with
      | Ok (Protocol.Health_report { id = 7003; health }) ->
          if health.Protocol.restarts < 1 then
            violate st "%s: health reports no restarts after a poison pill" who;
          if health.Protocol.poisoned < 1 then
            violate st "%s: health reports no poisoned jobs" who
      | Ok other ->
          violate st "%s: expected Health_report, got response %d" who
            (Protocol.response_id other)
      | Error msg -> violate st "%s: undecodable health: %s" who msg
      | exception Await_timeout -> violate st "%s: health timed out" who
      | exception Closed -> violate st "%s: closed during health" who)

(* The interleaving drill: several requests pipelined back-to-back on
   one connection; every answer must be a whole, decodable frame and the
   answer ids a permutation of the request ids — a torn or interleaved
   server write fails both. *)
let burst st ~socket ~graphs ~schedule_i =
  let who = Printf.sprintf "schedule %d (burst)" schedule_i in
  st.bursts <- st.bursts + 1;
  match connect socket with
  | exception Unix.Unix_error (e, _, _) ->
      violate st "%s: connect failed: %s" who (Unix.error_message e)
  | c ->
      Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
      let n = 4 in
      let sent =
        List.init n (fun k ->
            let id = 8000 + k in
            let payload, variant =
              optimize ~id ~variant:(k mod Array.length graphs) ~graphs ()
            in
            st.requests <- st.requests + 1;
            write_all c.fd (Protocol.frame payload);
            (id, variant))
      in
      let answered = Hashtbl.create n in
      (try
         for _ = 1 to n do
           match read_response c ~timeout_s:10. with
           | Ok resp -> Hashtbl.replace answered (Protocol.response_id resp) resp
           | Error msg -> violate st "%s: undecodable response: %s" who msg
         done
       with
      | Await_timeout -> violate st "%s: burst response timed out" who
      | Closed -> violate st "%s: connection closed mid-burst" who);
      List.iter
        (fun (id, variant) ->
          match Hashtbl.find_opt answered id with
          | None -> violate st "%s: request %d never answered" who id
          | Some resp -> check_result st ~who ~id ~variant (Ok resp))
        sent

(* One wire-fault schedule: a connection's worth of requests, each
   frame passed through the fault point. *)
let wire_schedule st ~socket ~graphs ~seed ~rate ~schedule_i =
  let who = Printf.sprintf "schedule %d" schedule_i in
  let sched =
    Inject.seeded ~points:Inject.wire_points
      ~seed:(seed + (7919 * schedule_i))
      ~rate ()
  in
  let conn = ref None in
  let ensure_conn () =
    match !conn with
    | Some c -> c
    | None ->
        let c = connect socket in
        conn := Some c;
        c
  in
  let drop_conn () =
    (match !conn with Some c -> disconnect c | None -> ());
    conn := None
  in
  Fun.protect ~finally:drop_conn @@ fun () ->
  for k = 0 to 3 do
    let id = (100 * schedule_i) + k in
    let variant = k mod Array.length graphs in
    let payload, _ = optimize ~id ~variant ~graphs () in
    st.requests <- st.requests + 1;
    match
      let c = ensure_conn () in
      (c, send_frame sched c payload)
    with
    | exception Unix.Unix_error (e, _, _) ->
        violate st "%s: connect failed: %s" who (Unix.error_message e)
    | _, Disconnected ->
        st.faults <- st.faults + 1;
        conn := None;
        (* the fault must have cost only this connection *)
        clean_roundtrip st ~who:(who ^ " (post-disconnect)") ~socket ~graphs
          ~variant ~id:(id + 50)
    | c, Torn ->
        st.faults <- st.faults + 1;
        (* complete the tear with a fresh frame: its bytes land inside
           the torn frame's claimed payload, producing garbage the
           server must answer or close on — never crash on *)
        (try
           write_all c.fd
             (Protocol.frame
                (Protocol.encode_request (Protocol.Health { id = id + 51 })))
         with Unix.Unix_error _ -> ());
        faulted_followup st ~who:(who ^ " (torn)") c;
        drop_conn ()
    | c, Corrupted ->
        st.faults <- st.faults + 1;
        faulted_followup st ~who:(who ^ " (corrupt)") c;
        drop_conn ()
    | c, Intact -> (
        match read_response c ~timeout_s:10. with
        | resp -> check_result st ~who ~id ~variant resp
        | exception Await_timeout ->
            violate st "%s: intact request %d timed out" who id
        | exception Closed ->
            violate st "%s: server closed on an intact frame" who)
  done

let run ?(schedules = 100) ?(seed = 42) ?(rate = 0.25) ~socket () =
  let graphs = graphs ~variants:2 in
  let st =
    {
      requests = 0;
      ok = 0;
      faults = 0;
      structured = 0;
      closes = 0;
      desyncs = 0;
      crash_drills = 0;
      bursts = 0;
      violations = [];
      expected = Hashtbl.create 4;
    }
  in
  (* prime the expected bodies with one clean cold request per variant
     so every later comparison — cached or not — is against the cold
     answer *)
  Array.iteri
    (fun v _ ->
      clean_roundtrip st ~who:"prime" ~socket ~graphs ~variant:v ~id:(9100 + v))
    graphs;
  for i = 0 to schedules - 1 do
    wire_schedule st ~socket ~graphs ~seed ~rate ~schedule_i:i;
    if i mod 10 = 3 then crash_drill st ~socket ~graphs ~schedule_i:i;
    if i mod 7 = 5 then burst st ~socket ~graphs ~schedule_i:i
  done;
  (* parting shot: the server must still be fully live *)
  clean_roundtrip st ~who:"final" ~socket ~graphs ~variant:0 ~id:9999;
  {
    schedules;
    requests = st.requests;
    ok = st.ok;
    faults = st.faults;
    structured = st.structured;
    closes = st.closes;
    desyncs = st.desyncs;
    crash_drills = st.crash_drills;
    bursts = st.bursts;
    violations = List.rev st.violations;
  }
