module Obs = Pypm_obs.Obs

(* Intrusive doubly-linked LRU list over the entry records themselves:
   find/add/evict are all O(1) under one mutex. The cache is shared by
   every worker domain, so all access is serialized; the critical
   sections are pointer surgery and hash lookups, never pass work. *)
type entry = {
  key : string;
  value : string;
  bytes : int;  (* key + value, the entry's charge against the bound *)
  mutable prev : entry option;  (* toward most-recent *)
  mutable next : entry option;  (* toward least-recent *)
}

type t = {
  max_bytes : int;
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable cur_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
  max_bytes : int;
}

let create ~max_bytes =
  if max_bytes <= 0 then invalid_arg "Cache.create: max_bytes must be > 0";
  {
    max_bytes;
    table = Hashtbl.create 256;
    mutex = Mutex.create ();
    mru = None;
    lru = None;
    cur_bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let charge key value = String.length key + String.length value + 64

(* unlink [e] from the recency list (table untouched) *)
let unlink t (e : entry) =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t (e : entry) =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

(* Events are emitted outside the lock, from the calling domain — they
   land in that domain's ring, next to the pass events of the same
   request. *)
let find (t : t) key =
  let result =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
            t.hits <- t.hits + 1;
            unlink t e;
            push_front t e;
            Some e.value
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  (match result with
  | Some _ -> Obs.emit (Obs.Cache_hit { key })
  | None -> Obs.emit (Obs.Cache_miss { key }));
  result

let add (t : t) key value =
  let bytes = charge key value in
  if bytes <= t.max_bytes then begin
    let evicted =
      Mutex.protect t.mutex (fun () ->
          (* replace-if-present keeps one entry per key; the stale entry's
             bytes are released first *)
          (match Hashtbl.find_opt t.table key with
          | Some old ->
              unlink t old;
              Hashtbl.remove t.table key;
              t.cur_bytes <- t.cur_bytes - old.bytes
          | None -> ());
          let e = { key; value; bytes; prev = None; next = None } in
          Hashtbl.replace t.table key e;
          push_front t e;
          t.cur_bytes <- t.cur_bytes + bytes;
          let evicted = ref [] in
          while t.cur_bytes > t.max_bytes do
            match t.lru with
            | Some victim ->
                unlink t victim;
                Hashtbl.remove t.table victim.key;
                t.cur_bytes <- t.cur_bytes - victim.bytes;
                t.evictions <- t.evictions + 1;
                evicted := (victim.key, victim.bytes) :: !evicted
            | None -> assert false (* cur_bytes > 0 implies an entry *)
          done;
          !evicted)
    in
    List.iter
      (fun (key, bytes) -> Obs.emit (Obs.Cache_evicted { key; bytes }))
      evicted
  end

let stats (t : t) : stats =
  Mutex.protect t.mutex (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        bytes = t.cur_bytes;
        max_bytes = t.max_bytes;
      })
