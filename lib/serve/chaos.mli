(** Wire-level chaos harness ([pypmc chaos]).

    Hammers a running server with deterministic, seeded fault
    {e schedules} — each schedule is one connection's worth of requests
    with faults applied to outbound frames at positions drawn from the
    schedule's stream, so a failing seed replays exactly:

    - {e torn frames} ([wire-partial]): a prefix of the frame followed
      by another frame, whose bytes complete the tear as garbage;
    - {e corrupt frames} ([wire-corrupt]): one byte flipped anywhere,
      length prefix included;
    - {e stalls} ([wire-stall]): the frame split around a pause —
      intact, so the answer must still be valid;
    - {e mid-request disconnects} ([wire-disconnect]): a prefix then an
      abrupt close.

    Interleaved with the wire schedules: {e crash drills} (a poison-pill
    request armed with the [worker-crash] point must come back
    [Worker_crashed], the same connection must serve the next request,
    and the health probe must report the restarts) and {e pipelined
    bursts} (back-to-back requests whose answers must all arrive whole,
    ids a permutation of those sent).

    The property checked, accumulated in [violations] (empty = holds):
    the server never crashes or stops accepting; every response frame
    decodes; intact requests are answered with matching ids; [Result]
    bodies for the same graph are byte-identical across all schedules
    (warm = cold = every seed); faulted connections end in a structured
    answer, a clean close, or a client-abandoned desync — nothing
    else. *)

type report = {
  schedules : int;
  requests : int;  (** requests attempted, faulted and clean *)
  ok : int;  (** valid, body-checked [Result] answers *)
  faults : int;  (** frames a wire fault was applied to *)
  structured : int;  (** structured non-[Result] answers observed *)
  closes : int;  (** clean server closes after mangled input *)
  desyncs : int;
      (** faulted connections the server legitimately kept awaiting
          (e.g. a tear inside the length prefix), abandoned by the
          client *)
  crash_drills : int;
  bursts : int;
  violations : string list;  (** empty iff the chaos property held *)
}

val pp : Format.formatter -> report -> unit

(** [run ~socket ()] drives [schedules] (default 100) seeded fault
    schedules at per-point rate [rate] (default 0.25) against the server
    at [socket]. Deterministic in [seed] (default 42) apart from
    latency. *)
val run :
  ?schedules:int -> ?seed:int -> ?rate:float -> socket:string -> unit -> report
