module Protocol = Pypm_serialize.Protocol
module Codec = Pypm_serialize.Codec
module Std_ops = Pypm_patterns.Std_ops
module Transformer = Pypm_models.Transformer
module Obs = Pypm_obs.Obs
module Inject = Pypm_resilience.Resilience.Inject

type result = {
  requests : int;
  ok : int;
  cached : int;
  overloaded : int;
  protocol_errors : int;
  pass_fatals : int;
  worker_crashes : int;
  deadlines : int;
  drained : int;
  reconnects : int;
  timeouts : int;
  wall_s : float;
  throughput : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  hit_rate : float;
}

(* Per-client outcome tallies, merged after the join. *)
type tally = {
  mutable t_ok : int;
  mutable t_cached : int;
  mutable t_over : int;
  mutable t_perr : int;
  mutable t_fatal : int;
  mutable t_crash : int;
  mutable t_dead : int;
  mutable t_drain : int;
  mutable t_reconn : int;
  mutable t_timeout : int;
  mutable t_lat : float list;  (* seconds per answered request *)
}

let fresh_tally () =
  {
    t_ok = 0;
    t_cached = 0;
    t_over = 0;
    t_perr = 0;
    t_fatal = 0;
    t_crash = 0;
    t_dead = 0;
    t_drain = 0;
    t_reconn = 0;
    t_timeout = 0;
    t_lat = [];
  }

(* The request mix: a small pool of distinct model graphs per client,
   cycled deterministically from the seed. Distinct clients build the
   same configurations against their own environments — different fresh
   symbols, identical fingerprints — so cross-client cache hits are part
   of what the harness measures. *)
let graph_pool ~seed ~variants =
  let env = Std_ops.make () in
  List.init variants (fun i ->
      let gelu =
        if (seed + i) mod 2 = 0 then Transformer.Div_two else Transformer.Mul_half
      in
      let cfg =
        Transformer.config
          ~layers:(1 + (i mod 3))
          ~hidden:64 ~heads:4 ~seq:16 ~batch:1
          ~activation:(Transformer.Act_gelu gelu)
          ~seed:(seed + i)
          (Printf.sprintf "load-%d-%d" seed i)
      in
      Codec.Graphs.encode (Transformer.build env cfg))

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

(* Jittered exponential backoff for sheds, drains and transient socket
   failures: base * 2^k, capped, scaled by a uniform draw in [0.5, 1.0)
   from the client's deterministic stream — clients that shed together
   must not retry together. *)
let backoff_s rng k =
  let exp = Float.min 0.1 (0.002 *. Float.pow 2. (Float.of_int k)) in
  exp *. (0.5 +. (0.5 *. Inject.roll rng))

exception Request_timeout
exception Conn_lost of string

(* One client: a blocking request/response loop on its own connection.
   Send, await the matching frame under a per-request timeout, record
   the verdict. [Overloaded]/[Draining] answers are retried with
   jittered backoff (shed and drain are flow control, not failure); a
   broken or timed-out socket is abandoned and reconnected — the server
   may have crashed, drained away, or been restarted underneath us. *)
let client ~socket ~seed ~requests ~program ~variants ~options ~timeout_s tally =
  let rng = Inject.seeded ~seed:(seed + 0x5eed) ~rate:0. () in
  let fd = ref None in
  let reader = ref (Protocol.Reader.create ()) in
  let buf = Bytes.create 65536 in
  let close_conn () =
    (match !fd with
    | Some f -> ( try Unix.close f with Unix.Unix_error _ -> ())
    | None -> ());
    fd := None
  in
  let connect () =
    match !fd with
    | Some f -> f
    | None ->
        let f = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (match Unix.connect f (Unix.ADDR_UNIX socket) with
        | () -> ()
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close f with Unix.Unix_error _ -> ());
            raise (Conn_lost (Unix.error_message e)));
        (* a fresh connection means a fresh deframer: bytes buffered
           from the dead one would desynchronize every later frame *)
        reader := Protocol.Reader.create ();
        fd := Some f;
        f
  in
  Fun.protect ~finally:close_conn @@ fun () ->
  let pool = graph_pool ~seed ~variants in
  let n_pool = List.length pool in
  let read_response f ~deadline =
    let rec go () =
      match Protocol.Reader.next !reader with
      | `Frame payload -> Protocol.decode_response payload
      | `Error msg -> raise (Conn_lost msg)
      | `Await ->
          let remaining = deadline -. Obs.monotonic () in
          if remaining <= 0. then raise Request_timeout;
          let readable =
            match Unix.select [ f ] [] [] remaining with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          if readable = [] then raise Request_timeout;
          (match Unix.read f buf 0 (Bytes.length buf) with
          | 0 -> raise (Conn_lost "connection closed mid-response")
          | n -> Protocol.Reader.feed !reader (Bytes.sub_string buf 0 n)
          | exception Unix.Unix_error (e, _, _) ->
              raise (Conn_lost (Unix.error_message e)));
          go ()
    in
    go ()
  in
  for i = 0 to requests - 1 do
    let graph = List.nth pool (i mod n_pool) in
    let req =
      Protocol.Optimize
        { id = i; program = Protocol.Named program; options; graph }
    in
    let rec attempt tries =
      let retry () =
        if tries < 25 then begin
          Unix.sleepf (backoff_s rng tries);
          attempt (tries + 1)
        end
      in
      (* monotonic: a wall-clock step (NTP) mid-request would otherwise
         produce a negative or wildly wrong latency sample *)
      let t0 = Obs.monotonic () in
      match
        let f = connect () in
        (match write_all f (Protocol.frame (Protocol.encode_request req)) with
        | () -> ()
        | exception Unix.Unix_error (e, _, _) ->
            raise (Conn_lost (Unix.error_message e)));
        read_response f ~deadline:(t0 +. timeout_s)
      with
      | Ok (Protocol.Result { cached; body; _ }) ->
          tally.t_lat <- (Obs.monotonic () -. t0) :: tally.t_lat;
          tally.t_ok <- tally.t_ok + 1;
          if cached then tally.t_cached <- tally.t_cached + 1;
          (* a response that does not decode back to an outcome counts
             as a protocol error even though the frame arrived *)
          (match Protocol.decode_outcome body with
          | Ok o -> if o.Protocol.fatal <> None then tally.t_fatal <- tally.t_fatal + 1
          | Error _ -> tally.t_perr <- tally.t_perr + 1)
      | Ok (Protocol.Overloaded _) ->
          tally.t_over <- tally.t_over + 1;
          retry ()
      | Ok (Protocol.Draining _) ->
          (* drain is flow control too: back off and retry — by the
             bounded-retry horizon a successor server may be accepting *)
          tally.t_drain <- tally.t_drain + 1;
          close_conn ();
          retry ()
      | Ok (Protocol.Worker_crashed _) ->
          (* the request is quarantined as a poison pill; retrying it
             would just crash another worker *)
          tally.t_crash <- tally.t_crash + 1
      | Ok (Protocol.Deadline_exceeded _) ->
          (* terminal: the server gave up on this job; a retry would eat
             another full deadline *)
          tally.t_dead <- tally.t_dead + 1
      | Ok
          ( Protocol.Bad_request _ | Protocol.Server_error _
          | Protocol.Stats_report _ | Protocol.Health_report _ )
      | Error _ ->
          tally.t_perr <- tally.t_perr + 1
      | exception Request_timeout ->
          (* the response may still arrive on this connection and would
             then answer the wrong request — abandon the socket *)
          tally.t_timeout <- tally.t_timeout + 1;
          close_conn ();
          retry ()
      | exception Conn_lost _ ->
          tally.t_reconn <- tally.t_reconn + 1;
          close_conn ();
          retry ()
    in
    attempt 0
  done

(* Ceiling-based nearest-rank on the (n-1)-scaled rank. The previous
   truncating version picked too low an index on exact-boundary sample
   counts — p99 of 100 sorted samples selected index 98 (the 99th
   smallest) instead of index 99. *)
let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let rank = Float.of_int (n - 1) *. p /. 100. in
      let idx = int_of_float (Float.ceil rank) in
      sorted.(max 0 (min (n - 1) idx))

let run ~socket ~clients ~requests ~seed ?(program = "both") ?(variants = 4)
    ?(options = Protocol.default_options) ?(request_timeout_s = 30.) () =
  if clients <= 0 then invalid_arg "Load.run: clients must be > 0";
  if requests <= 0 then invalid_arg "Load.run: requests must be > 0";
  if request_timeout_s <= 0. then
    invalid_arg "Load.run: request_timeout_s must be > 0";
  (* [requests] is the total; split as evenly as the count allows *)
  let share i = (requests / clients) + (if i < requests mod clients then 1 else 0) in
  let t0 = Obs.monotonic () in
  let workers =
    List.init clients (fun i ->
        let tally = fresh_tally () in
        let d =
          Domain.spawn (fun () ->
              client ~socket ~seed:(seed + (1000 * i)) ~requests:(share i)
                ~program ~variants ~options ~timeout_s:request_timeout_s tally;
              tally)
        in
        d)
  in
  let tallies = List.map Domain.join workers in
  let wall_s = Obs.monotonic () -. t0 in
  let sum f = List.fold_left (fun a t -> a + f t) 0 tallies in
  let ok = sum (fun t -> t.t_ok) in
  let cached = sum (fun t -> t.t_cached) in
  let lats =
    Array.of_list (List.concat_map (fun t -> t.t_lat) tallies)
  in
  (* Float.compare, not polymorphic compare: the latter is a structural
     comparison that happens to work on boxed floats but is slower and
     easy to break by changing the element type. Float.compare is also
     total on NaN (NaN sorts first); latencies are differences of two
     monotonic-clock reads and can never be NaN, so the order of the
     percentile array is the numeric order either way. *)
  Array.sort Float.compare lats;
  {
    requests;
    ok;
    cached;
    overloaded = sum (fun t -> t.t_over);
    protocol_errors = sum (fun t -> t.t_perr);
    pass_fatals = sum (fun t -> t.t_fatal);
    worker_crashes = sum (fun t -> t.t_crash);
    deadlines = sum (fun t -> t.t_dead);
    drained = sum (fun t -> t.t_drain);
    reconnects = sum (fun t -> t.t_reconn);
    timeouts = sum (fun t -> t.t_timeout);
    wall_s;
    throughput = (if wall_s > 0. then float_of_int ok /. wall_s else 0.);
    p50_ms = percentile lats 50. *. 1000.;
    p95_ms = percentile lats 95. *. 1000.;
    p99_ms = percentile lats 99. *. 1000.;
    hit_rate =
      (if ok > 0 then float_of_int cached /. float_of_int ok else 0.);
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>load: %d request(s), %d ok (%d cached, %.0f%% hit rate), %d \
     overload retr%s, %d protocol error(s), %d pass fatal(s)@,\
     resilience: %d worker crash(es), %d deadline(s), %d drain \
     answer(s), %d reconnect(s), %d timeout(s)@,\
     wall %.3f s, %.1f req/s@,\
     latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms@]"
    r.requests r.ok r.cached (r.hit_rate *. 100.) r.overloaded
    (if r.overloaded = 1 then "y" else "ies")
    r.protocol_errors r.pass_fatals r.worker_crashes r.deadlines r.drained
    r.reconnects r.timeouts r.wall_s r.throughput r.p50_ms r.p95_ms r.p99_ms
