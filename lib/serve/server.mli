(** The resident optimization service.

    A Unix-domain-socket server that accepts {!Pypm_serialize.Protocol}
    frames and runs rewrite passes on a {!Pool} of worker domains. The
    moving parts:

    - {e accept loop} (the calling domain): [select] over the listen
      socket and every connection, incremental deframing, request
      decode, admission control — a full queue answers [Overloaded]
      immediately instead of queueing unbounded work;
    - {e workers}: each worker domain owns a full operator environment
      and a cache of {!Pypm_engine.Pass.prepared} engines keyed by
      (program, engine), so the plan trie is compiled once per worker,
      not once per request;
    - {e supervision}: an exception escaping a job kills its worker
      domain; the pool supervisor restarts it with a fresh environment
      under [restart_budget]. The job is retried once; a job that kills
      two workers is answered [Worker_crashed] and quarantined;
    - {e deadline watchdog}: a job not answered within [job_deadline_s]
      of admission is reaped with [Deadline_exceeded]; a worker still
      grinding on it loses the completion claim and its late result is
      discarded;
    - {e graceful drain}: on SIGTERM/SIGINT (CLI mode) or the [drain]
      hook, the server stops accepting connections, answers new
      [Optimize] requests with [Draining], serves what is in flight for
      up to [drain_timeout_s], then exits — answering any stragglers
      [Deadline_exceeded] first. A second signal exits immediately;
    - {e health}: [Health] requests are answered inline by the accept
      loop — status, uptime, workers alive, restart and poison counts,
      in-flight jobs — even while draining;
    - {e result cache} ({!Cache}): content-addressed by (program,
      options, graph fingerprint); a warm response body is
      byte-identical to the cold one;
    - {e resilience}: request faults — undecodable bytes, unknown
      engines or pattern sets, injected faults, anything a pass can
      throw — become structured error responses on the same connection;
      the server and the connection both survive.

    Responses may be written by any domain; per-connection write mutexes
    keep concurrent frames from interleaving, and a per-connection
    pending count keeps a worker's late write off a recycled fd. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (>= 1) *)
  queue_bound : int;  (** jobs queued before shedding *)
  cache_bytes : int;  (** result-cache byte bound *)
  max_frame_bytes : int;
      (** largest request frame accepted; a bigger length prefix is a
          sticky protocol error before any allocation *)
  job_deadline_s : float option;
      (** admission-to-completion budget per job; [None] disables the
          watchdog *)
  drain_timeout_s : float;  (** how long a graceful drain waits *)
  restart_budget : int;  (** lifetime worker restarts before giving up *)
}

(** 4 workers, queue bound 64, 64 MiB cache, 64 MiB frames, 300 s job
    deadline, 5 s drain, 10000 restarts. *)
val default_config : socket_path:string -> config

(** [run ?on_ready ?stop ?drain ?signals cfg] binds, listens, serves.
    Blocks until [stop ()] returns true (polled a few times per second)
    or a drain completes; [on_ready] fires once the socket accepts
    connections — the in-process test hook. [drain] is polled like
    [stop] and starts a graceful drain when it first returns true;
    [signals] (default false — only [pypmc serve] sets it) installs
    SIGTERM/SIGINT handlers that do the same. Removes the socket file on
    exit.

    Startup probes an existing socket file: live server → [Error]
    without touching it; stale socket from a crashed process →
    reclaimed; non-socket file → [Error]. A losing bind race surfaces
    as [Error] too ([EADDRINUSE]). *)
val run :
  ?on_ready:(unit -> unit) ->
  ?stop:(unit -> bool) ->
  ?drain:(unit -> bool) ->
  ?signals:bool ->
  config ->
  (unit, string) result

val log_src : Logs.src
