(** The resident optimization service.

    A Unix-domain-socket server that accepts {!Pypm_serialize.Protocol}
    frames and runs rewrite passes on a {!Pool} of worker domains. The
    moving parts:

    - {e accept loop} (the calling domain): [select] over the listen
      socket and every connection, incremental deframing, request
      decode, admission control — a full queue answers [Overloaded]
      immediately instead of queueing unbounded work;
    - {e workers}: each worker domain owns a full operator environment
      and a cache of {!Pypm_engine.Pass.prepared} engines keyed by
      (program, engine), so the plan trie is compiled once per worker,
      not once per request;
    - {e result cache} ({!Cache}): content-addressed by (program,
      options, graph fingerprint); a warm response body is
      byte-identical to the cold one;
    - {e resilience}: request faults — undecodable bytes, unknown
      engines or pattern sets, injected faults, anything a pass can
      throw — become structured error responses on the same connection;
      the server and the connection both survive.

    Responses may be written by any domain; per-connection write mutexes
    keep concurrent frames from interleaving. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (>= 1) *)
  queue_bound : int;  (** jobs queued before shedding *)
  cache_bytes : int;  (** result-cache byte bound *)
}

(** 4 workers, queue bound 64, 64 MiB cache. *)
val default_config : socket_path:string -> config

(** [run ?on_ready ?stop cfg] binds, listens, serves. Blocks until
    [stop ()] returns true (polled a few times per second); [on_ready]
    fires once the socket accepts connections — the in-process test
    hook. Removes the socket file on exit. *)
val run : ?on_ready:(unit -> unit) -> ?stop:(unit -> bool) -> config -> unit

val log_src : Logs.src
