(** The content-addressed result cache.

    Maps a request's content key — digest of (program, pass options,
    graph fingerprint) — to the cold response's encoded outcome bytes.
    Because the cached value {e is} the cold body, a warm response is
    byte-identical to the cold one by construction.

    Bounded by total byte size with LRU eviction; an entry larger than
    the whole bound is silently not cached. All operations are
    mutex-serialized and O(1); the cache is shared by every worker
    domain. Hits, misses and evictions are counted and emitted as
    {!Pypm_obs.Obs} events ([Cache_hit] / [Cache_miss] /
    [Cache_evicted]) on the calling domain. *)

type t

(** [create ~max_bytes] — total byte bound across keys and values.
    Raises [Invalid_argument] when [max_bytes <= 0]. *)
val create : max_bytes:int -> t

(** [find t key] returns the cached bytes and refreshes the entry's
    recency, or [None] (counted as a miss). *)
val find : t -> string -> string option

(** [add t key value] inserts (or replaces) and evicts least-recently
    used entries until the byte bound holds again. *)
val add : t -> string -> string -> unit

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;  (** current charge, <= [max_bytes] *)
  max_bytes : int;
}

val stats : t -> stats
