module Obs = Pypm_obs.Obs
module Pool = Pypm_parallel.Pool
module Team = Pypm_parallel.Team
module Pass = Pypm_engine.Pass
module Program = Pypm_engine.Program
module Codec = Pypm_serialize.Codec
module Protocol = Pypm_serialize.Protocol
module Std_ops = Pypm_patterns.Std_ops
module Corpus = Pypm_patterns.Corpus
module Inject = Pypm_resilience.Resilience.Inject
module Signature = Pypm_term.Signature

let log_src = Logs.Src.create "pypm.serve" ~doc:"PyPM optimization service"

module Log = (val Logs.src_log log_src)

type config = {
  socket_path : string;
  workers : int;
  queue_bound : int;
  cache_bytes : int;
}

let default_config ~socket_path =
  { socket_path; workers = 4; queue_bound = 64; cache_bytes = 64 * 1024 * 1024 }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Responses are written by whichever domain produced them — workers for
   results, the accept loop for sheds and protocol errors — so each
   connection carries a write mutex: frames from concurrent requests on
   one connection must not interleave mid-frame. *)
type conn = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  wmutex : Mutex.t;
  mutable alive : bool;
  mutable pending : int;
      (* jobs in flight for this connection; the fd is closed only when
         this reaches 0 after death — otherwise a worker's late response
         could land on a recycled descriptor belonging to a new client *)
  mutable closed : bool;
}

let close_fd_once conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let retain conn =
  Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending + 1)

let release conn =
  Mutex.protect conn.wmutex (fun () ->
      conn.pending <- conn.pending - 1;
      if (not conn.alive) && conn.pending = 0 then close_fd_once conn)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let send conn resp =
  Mutex.protect conn.wmutex (fun () ->
      if conn.alive && not conn.closed then
        try write_all conn.fd (Protocol.frame (Protocol.encode_response resp))
        with Unix.Unix_error _ | Sys_error _ ->
          (* client went away; the accept loop reaps the fd *)
          conn.alive <- false)

(* ------------------------------------------------------------------ *)
(* Shared state                                                        *)
(* ------------------------------------------------------------------ *)

type shared = {
  cache : Cache.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  errs : int Atomic.t;
  t0 : float;
  n_workers : int;
}

let server_stats sh : Protocol.server_stats =
  let cs = Cache.stats sh.cache in
  {
    Protocol.served = Atomic.get sh.served;
    shed = Atomic.get sh.shed;
    errors = Atomic.get sh.errs;
    cache_hits = cs.Cache.hits;
    cache_misses = cs.Cache.misses;
    cache_evictions = cs.Cache.evictions;
    cache_entries = cs.Cache.entries;
    cache_bytes = cs.Cache.bytes;
    workers = sh.n_workers;
    uptime_s = Obs.monotonic () -. sh.t0;
  }

(* ------------------------------------------------------------------ *)
(* Worker context                                                      *)
(* ------------------------------------------------------------------ *)

(* One per worker domain, built on that domain: the operator environment
   and a cache of prepared engines keyed by (program, engine) — the plan
   trie is compiled once per worker, not once per request. [team] is the
   worker's lent-out shard team for [domains > 1] requests, spawned
   lazily and reused across requests (domain spawn/teardown costs
   milliseconds — per-request teams would dwarf small passes); only the
   owning worker domain ever touches it, and the pool's teardown hook
   shuts it down. *)
type wctx = {
  env : Std_ops.env;
  prepared : (string, Pass.prepared) Hashtbl.t;
  mutable team : Team.t option;
}

(* Reuse the cached team when the requested shard count matches;
   otherwise replace it. Sequential requests bypass the team entirely. *)
let team_for (wctx : wctx) domains =
  if domains <= 1 then None
  else
    match wctx.team with
    | Some t when Team.shards t = domains -> Some t
    | prev ->
        Option.iter Team.shutdown prev;
        let t = Team.create ~shards:domains in
        wctx.team <- Some t;
        Some t

type job = {
  jconn : conn;
  jid : int;
  jprogram : Protocol.program_spec;
  joptions : Protocol.options;
  jgraph : string;
}

let engine_of_string = function
  | "naive" -> Some Pass.Naive
  | "index" -> Some Pass.Index
  | "plan" -> Some Pass.Plan
  | "egraph" -> Some Pass.Egraph
  | _ -> None

let named_program env = function
  | "none" -> Some (Program.make ~sg:env.Std_ops.sg [])
  | "fmha" -> Some (Corpus.fmha_program env.Std_ops.sg)
  | "epilog" -> Some (Corpus.epilog_program env.Std_ops.sg)
  | "both" -> Some (Corpus.both_program env.Std_ops.sg)
  | "full" -> Some (Corpus.full_program env.Std_ops.sg)
  | _ -> None

exception Reject of Protocol.response

let reject_bad id reason = raise (Reject (Protocol.Bad_request { id; reason }))

(* The request's content key: program identity x option block x the
   isomorphism-invariant graph fingerprint. Fingerprint, not bytes: two
   clients encoding the same model mint different fresh-symbol uids and
   node ids, but fingerprint-equal graphs get the same optimization, so
   they share a cache line. *)
let cache_key ~program_key ~options ~fingerprint =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ program_key; Protocol.options_fingerprint options; fingerprint ]))

let prepared_for wctx ~program_key ~engine ~(program : Protocol.program_spec)
    ~id =
  let slot = program_key ^ "#" ^ Pass.engine_name engine in
  match Hashtbl.find_opt wctx.prepared slot with
  | Some p -> p
  | None ->
      let prog =
        match program with
        | Protocol.Named name -> (
            match named_program wctx.env name with
            | Some p -> p
            | None ->
                reject_bad id
                  (Printf.sprintf
                     "unknown pattern set %S (none|fmha|epilog|both|full)" name))
        | Protocol.Inline bytes -> (
            match Codec.decode_into ~sg:wctx.env.Std_ops.sg bytes with
            | Ok p -> p
            | Error msg -> reject_bad id ("pattern binary: " ^ msg))
      in
      let p = Pass.prepare ~engine prog in
      Hashtbl.replace wctx.prepared slot p;
      p

let inject_of_options ~id (o : Protocol.options) =
  if o.Protocol.fault_rate <= 0. then Inject.none
  else
    let points =
      match o.Protocol.fault_points with
      | [] -> None
      | names ->
          Some
            (List.map
               (fun n ->
                 match Inject.point_of_name n with
                 | Some p -> p
                 | None ->
                     reject_bad id (Printf.sprintf "unknown fault point %S" n))
               names)
    in
    Inject.seeded ?points ~seed:o.Protocol.fault_seed
      ~rate:o.Protocol.fault_rate ()

let handle_job sh wctx (j : job) =
  Fun.protect ~finally:(fun () -> release j.jconn) @@ fun () ->
  let t0 = Obs.monotonic () in
  let o = j.joptions in
  match
    let engine =
      match engine_of_string o.Protocol.engine with
      | Some e -> e
      | None ->
          reject_bad j.jid
            (Printf.sprintf "unknown engine %S (naive|index|plan|egraph)"
               o.Protocol.engine)
    in
    let program_key =
      match j.jprogram with
      | Protocol.Named n -> "named:" ^ n
      | Protocol.Inline bytes -> "inline:" ^ Digest.to_hex (Digest.string bytes)
    in
    let prepared = prepared_for wctx ~program_key ~engine ~program:j.jprogram ~id:j.jid in
    (* Per-request signature copy: graph decode declares the graph's
       fresh leaf symbols, and those must not accumulate in the worker's
       long-lived signature, request after request. *)
    let sg = Signature.copy wctx.env.Std_ops.sg in
    let g =
      match
        Codec.Graphs.decode_into ~sg ~infer:wctx.env.Std_ops.infer j.jgraph
      with
      | Ok g -> g
      | Error msg -> reject_bad j.jid ("graph: " ^ msg)
    in
    let fingerprint = Pypm_fuzz.Fuzz.fingerprint g in
    let key = cache_key ~program_key ~options:o ~fingerprint in
    match Cache.find sh.cache key with
    | Some body ->
        Protocol.Result
          { id = j.jid; cached = true; service_s = Obs.monotonic () -. t0; body }
    | None ->
        let inject = inject_of_options ~id:j.jid o in
        (* clamp: the client chose the count, the server pays for the
           domains — and each worker may hold its own cached team *)
        let domains = max 1 (min 64 o.Protocol.domains) in
        let stats =
          Pass.run_prepared ~check_types:o.Protocol.check_types
            ~fuel:o.Protocol.fuel ~max_rewrites:o.Protocol.max_rewrites
            ?deadline_s:o.Protocol.deadline_s
            ~quarantine_after:o.Protocol.quarantine_after ~inject
            ~on_error:(if o.Protocol.strict then `Fail else `Quarantine)
            ~domains
            ?team:(team_for wctx domains)
            prepared g
        in
        let out_graph = Codec.Graphs.encode g in
        let body =
          Protocol.encode_outcome
            {
              Protocol.graph = out_graph;
              stats_json = Pass.stats_json stats;
              errors = stats.Pass.errors;
              fatal = stats.Pass.fatal;
            }
        in
        Cache.add sh.cache key body;
        Protocol.Result
          { id = j.jid; cached = false; service_s = Obs.monotonic () -. t0; body }
  with
  | Protocol.Result { cached; _ } as resp ->
      Atomic.incr sh.served;
      Obs.emit (Obs.Request_served { id = j.jid; cached });
      send j.jconn resp
  | resp ->
      (* non-Result leaks only via bugs; count it as an error anyway *)
      Atomic.incr sh.errs;
      send j.jconn resp
  | exception Reject resp ->
      Atomic.incr sh.errs;
      send j.jconn resp
  | exception exn ->
      (* the catch-all that keeps a worker alive through anything a
         request can throw (encode errors, injected chaos); the client
         gets a structured failure and the next request proceeds *)
      Atomic.incr sh.errs;
      Log.warn (fun m ->
          m "request %d failed: %s" j.jid (Printexc.to_string exn));
      send j.jconn
        (Protocol.Server_error { id = j.jid; reason = Printexc.to_string exn })

(* ------------------------------------------------------------------ *)
(* Accept loop                                                        *)
(* ------------------------------------------------------------------ *)

let handle_frame sh pool conn payload =
  match Protocol.decode_request payload with
  | Error msg ->
      Atomic.incr sh.errs;
      send conn (Protocol.Bad_request { id = 0; reason = msg })
  | Ok (Protocol.Stats { id }) ->
      send conn (Protocol.Stats_report { id; stats = server_stats sh })
  | Ok (Protocol.Optimize { id; program; options; graph }) -> (
      let job =
        { jconn = conn; jid = id; jprogram = program; joptions = options;
          jgraph = graph }
      in
      retain conn;
      match Pool.submit pool job with
      | `Accepted -> ()
      | `Overloaded ->
          Atomic.incr sh.shed;
          Obs.emit (Obs.Request_shed { id });
          send conn (Protocol.Overloaded { id });
          release conn)

let run ?(on_ready = fun () -> ()) ?(stop = fun () -> false) (cfg : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sh =
    {
      cache = Cache.create ~max_bytes:cfg.cache_bytes;
      served = Atomic.make 0;
      shed = Atomic.make 0;
      errs = Atomic.make 0;
      t0 = Obs.monotonic ();
      n_workers = cfg.workers;
    }
  in
  let pool =
    (* [wctxs] is written by [setup] and read by [teardown], both of
       which run on the owning worker's domain — no cross-domain access. *)
    let wctxs = Array.make cfg.workers None in
    Pool.create ~workers:cfg.workers ~queue_bound:cfg.queue_bound
      ~teardown:(fun wid ->
        Option.iter
          (fun (w : wctx) ->
            Option.iter Team.shutdown w.team;
            w.team <- None)
          wctxs.(wid))
      (fun wid ->
        let wctx =
          { env = Std_ops.make (); prepared = Hashtbl.create 8; team = None }
        in
        wctxs.(wid) <- Some wctx;
        fun job -> handle_job sh wctx job)
  in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  Log.info (fun m ->
      m "serving on %s: %d worker(s), queue bound %d, %d-byte cache"
        cfg.socket_path cfg.workers cfg.queue_bound cfg.cache_bytes);
  on_ready ();
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn (c : conn) =
    Hashtbl.remove conns c.fd;
    Mutex.protect c.wmutex (fun () ->
        c.alive <- false;
        if c.pending = 0 then close_fd_once c)
  in
  let buf = Bytes.create 65536 in
  let rec loop () =
    if not (stop ()) then begin
      let fds = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      let readable =
        match Unix.select fds [] [] 0.2 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          if fd = listen_fd then begin
            match Unix.accept listen_fd with
            | cfd, _ ->
                Hashtbl.replace conns cfd
                  {
                    fd = cfd;
                    reader = Protocol.Reader.create ();
                    wmutex = Mutex.create ();
                    alive = true;
                    pending = 0;
                    closed = false;
                  }
            | exception Unix.Unix_error _ -> ()
          end
          else
            match Hashtbl.find_opt conns fd with
            | None -> ()
            | Some conn -> (
                match Unix.read fd buf 0 (Bytes.length buf) with
                | 0 -> close_conn conn
                | n ->
                    Protocol.Reader.feed conn.reader
                      (Bytes.sub_string buf 0 n);
                    let rec drain () =
                      match Protocol.Reader.next conn.reader with
                      | `Frame payload ->
                          handle_frame sh pool conn payload;
                          drain ()
                      | `Await -> ()
                      | `Error msg ->
                          (* oversize or mangled framing is sticky: no
                             frame boundary to resync on *)
                          Atomic.incr sh.errs;
                          send conn
                            (Protocol.Bad_request { id = 0; reason = msg });
                          close_conn conn
                    in
                    drain ()
                | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
                  ->
                    close_conn conn
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        readable;
      (* reap connections whose writes failed *)
      Hashtbl.iter
        (fun _ c -> if not c.alive then close_conn c)
        (Hashtbl.copy conns);
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* drain queued jobs before tearing connections down so in-flight
         requests still answer *)
      Pool.shutdown pool;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Hashtbl.iter
        (fun _ c -> Mutex.protect c.wmutex (fun () -> close_fd_once c))
        conns;
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
    loop
