module Obs = Pypm_obs.Obs
module Pool = Pypm_parallel.Pool
module Team = Pypm_parallel.Team
module Pass = Pypm_engine.Pass
module Program = Pypm_engine.Program
module Codec = Pypm_serialize.Codec
module Protocol = Pypm_serialize.Protocol
module Std_ops = Pypm_patterns.Std_ops
module Corpus = Pypm_patterns.Corpus
module Inject = Pypm_resilience.Resilience.Inject
module Signature = Pypm_term.Signature

let log_src = Logs.Src.create "pypm.serve" ~doc:"PyPM optimization service"

module Log = (val Logs.src_log log_src)

type config = {
  socket_path : string;
  workers : int;
  queue_bound : int;
  cache_bytes : int;
  max_frame_bytes : int;
  job_deadline_s : float option;
  drain_timeout_s : float;
  restart_budget : int;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 4;
    queue_bound = 64;
    cache_bytes = 64 * 1024 * 1024;
    max_frame_bytes = 64 * 1024 * 1024;
    job_deadline_s = Some 300.;
    drain_timeout_s = 5.;
    restart_budget = 10_000;
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Responses are written by whichever domain produced them — workers for
   results, the accept loop for sheds, reaps and protocol errors, the
   pool supervisor for poison pills — so each connection carries a write
   mutex: frames from concurrent requests on one connection must not
   interleave mid-frame. *)
type conn = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  wmutex : Mutex.t;
  mutable alive : bool;
  mutable pending : int;
      (* jobs in flight for this connection; the fd is closed only when
         this reaches 0 after death — otherwise a worker's late response
         could land on a recycled descriptor belonging to a new client *)
  mutable closed : bool;
}

let close_fd_once conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let retain conn =
  Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending + 1)

let release conn =
  Mutex.protect conn.wmutex (fun () ->
      conn.pending <- conn.pending - 1;
      if (not conn.alive) && conn.pending = 0 then close_fd_once conn)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let send conn resp =
  Mutex.protect conn.wmutex (fun () ->
      if conn.alive && not conn.closed then
        try write_all conn.fd (Protocol.frame (Protocol.encode_response resp))
        with Unix.Unix_error _ | Sys_error _ ->
          (* client went away; the accept loop reaps the fd *)
          conn.alive <- false)

(* ------------------------------------------------------------------ *)
(* Jobs and shared state                                               *)
(* ------------------------------------------------------------------ *)

type job = {
  jconn : conn;
  jid : int;  (* client-chosen request id, echoed in the response *)
  juid : int;  (* server-side unique id, keys the inflight registry *)
  jadmitted : float;  (* monotonic admission time, for the watchdog *)
  jdone : bool Atomic.t;
      (* completion claim: exactly one of the worker, the deadline
         watchdog and the pool supervisor answers the client and
         releases the connection — whoever wins the CAS *)
  jprogram : Protocol.program_spec;
  joptions : Protocol.options;
  jgraph : string;
}

type shared = {
  cache : Cache.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  errs : int Atomic.t;
  poisoned : int Atomic.t;
  t0 : float;
  n_workers : int;
  jobs_mutex : Mutex.t;
  inflight : (int, job) Hashtbl.t;  (* juid -> admitted, unanswered job *)
}

let register sh j =
  Mutex.protect sh.jobs_mutex (fun () -> Hashtbl.replace sh.inflight j.juid j)

let inflight_count sh =
  Mutex.protect sh.jobs_mutex (fun () -> Hashtbl.length sh.inflight)

(* Answer the job's client and retire the job — from whichever domain
   won the completion claim. Loses the race: does nothing (someone else
   already answered). *)
let finish sh j resp =
  if Atomic.compare_and_set j.jdone false true then begin
    Mutex.protect sh.jobs_mutex (fun () -> Hashtbl.remove sh.inflight j.juid);
    (match resp with
    | Protocol.Result { cached; _ } ->
        Atomic.incr sh.served;
        Obs.emit (Obs.Request_served { id = j.jid; cached })
    | Protocol.Worker_crashed _ ->
        Atomic.incr sh.errs;
        Atomic.incr sh.poisoned;
        Obs.emit (Obs.Job_poisoned { id = j.jid })
    | Protocol.Overloaded _ -> Atomic.incr sh.shed
    | _ -> Atomic.incr sh.errs);
    send j.jconn resp;
    release j.jconn
  end

let server_stats sh : Protocol.server_stats =
  let cs = Cache.stats sh.cache in
  {
    Protocol.served = Atomic.get sh.served;
    shed = Atomic.get sh.shed;
    errors = Atomic.get sh.errs;
    cache_hits = cs.Cache.hits;
    cache_misses = cs.Cache.misses;
    cache_evictions = cs.Cache.evictions;
    cache_entries = cs.Cache.entries;
    cache_bytes = cs.Cache.bytes;
    workers = sh.n_workers;
    uptime_s = Obs.monotonic () -. sh.t0;
  }

(* ------------------------------------------------------------------ *)
(* Worker context                                                      *)
(* ------------------------------------------------------------------ *)

(* One per worker domain, built on that domain: the operator environment
   and a cache of prepared engines keyed by (program, engine) — the plan
   trie is compiled once per worker, not once per request. [team] is the
   worker's lent-out shard team for [domains > 1] requests, spawned
   lazily and reused across requests (domain spawn/teardown costs
   milliseconds — per-request teams would dwarf small passes); only the
   owning worker domain ever touches it, and the pool's teardown hook
   shuts it down. When the supervisor restarts a crashed worker, the
   replacement's [setup] builds a fresh context, so whatever state the
   crash poisoned is gone. *)
type wctx = {
  env : Std_ops.env;
  prepared : (string, Pass.prepared) Hashtbl.t;
  mutable team : Team.t option;
}

(* Reuse the cached team when the requested shard count matches;
   otherwise replace it. Sequential requests bypass the team entirely. *)
let team_for (wctx : wctx) domains =
  if domains <= 1 then None
  else
    match wctx.team with
    | Some t when Team.shards t = domains -> Some t
    | prev ->
        Option.iter Team.shutdown prev;
        let t = Team.create ~shards:domains in
        wctx.team <- Some t;
        Some t

let engine_of_string = function
  | "naive" -> Some Pass.Naive
  | "index" -> Some Pass.Index
  | "plan" -> Some Pass.Plan
  | "egraph" -> Some Pass.Egraph
  | _ -> None

let named_program env = function
  | "none" -> Some (Program.make ~sg:env.Std_ops.sg [])
  | "fmha" -> Some (Corpus.fmha_program env.Std_ops.sg)
  | "epilog" -> Some (Corpus.epilog_program env.Std_ops.sg)
  | "both" -> Some (Corpus.both_program env.Std_ops.sg)
  | "full" -> Some (Corpus.full_program env.Std_ops.sg)
  | _ -> None

exception Reject of Protocol.response

let reject_bad id reason = raise (Reject (Protocol.Bad_request { id; reason }))

(* The request's content key: program identity x option block x the
   isomorphism-invariant graph fingerprint. Fingerprint, not bytes: two
   clients encoding the same model mint different fresh-symbol uids and
   node ids, but fingerprint-equal graphs get the same optimization, so
   they share a cache line. *)
let cache_key ~program_key ~options ~fingerprint =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ program_key; Protocol.options_fingerprint options; fingerprint ]))

let prepared_for wctx ~program_key ~engine ~(program : Protocol.program_spec)
    ~id =
  let slot = program_key ^ "#" ^ Pass.engine_name engine in
  match Hashtbl.find_opt wctx.prepared slot with
  | Some p -> p
  | None ->
      let prog =
        match program with
        | Protocol.Named name -> (
            match named_program wctx.env name with
            | Some p -> p
            | None ->
                reject_bad id
                  (Printf.sprintf
                     "unknown pattern set %S (none|fmha|epilog|both|full)" name))
        | Protocol.Inline bytes -> (
            match Codec.decode_into ~sg:wctx.env.Std_ops.sg bytes with
            | Ok p -> p
            | Error msg -> reject_bad id ("pattern binary: " ^ msg))
      in
      (* Admission lint: a program with dead patterns or unsatisfiable
         guards is a structured Bad_request at admission time, not a
         runtime surprise billed to every request. Warnings pass;
         overlap search is skipped — only error-severity findings can
         reject, and they never come from the overlap report. The verdict
         is amortized with the prepared engine: one lint per
         (program, engine) slot per worker. *)
      (match
         Pypm_analysis.Analysis.(errors (lint ~overlaps:false prog))
       with
      | [] -> ()
      | errs ->
          reject_bad id
            ("program rejected by lint: "
            ^ String.concat "; "
                (List.map
                   (fun d ->
                     Format.asprintf "%a"
                       Pypm_analysis.Analysis.pp_diagnostic d)
                   errs)));
      let p = Pass.prepare ~engine prog in
      Hashtbl.replace wctx.prepared slot p;
      p

let inject_of_options ~id (o : Protocol.options) =
  if o.Protocol.fault_rate <= 0. then Inject.none
  else
    let points =
      match o.Protocol.fault_points with
      | [] -> None
      | names ->
          Some
            (List.map
               (fun n ->
                 match Inject.point_of_name n with
                 | Some p -> p
                 | None ->
                     reject_bad id (Printf.sprintf "unknown fault point %S" n))
               names)
    in
    Inject.seeded ?points ~seed:o.Protocol.fault_seed
      ~rate:o.Protocol.fault_rate ()

(* How long an injected serve-stall holds the worker: long enough to
   trip any test-sized job deadline, short enough that the worker's
   eventual (discarded) completion doesn't stall the suite. *)
let stall_s = 0.75

let handle_job sh wctx (j : job) =
  (* reaped while still queued (deadline passed before a worker was
     free): the watchdog already answered; skip the work entirely *)
  if Atomic.get j.jdone then ()
  else begin
    let t0 = Obs.monotonic () in
    let o = j.joptions in
    match
      let engine =
        match engine_of_string o.Protocol.engine with
        | Some e -> e
        | None ->
            reject_bad j.jid
              (Printf.sprintf "unknown engine %S (naive|index|plan|egraph)"
                 o.Protocol.engine)
      in
      let program_key =
        match j.jprogram with
        | Protocol.Named n -> "named:" ^ n
        | Protocol.Inline bytes ->
            "inline:" ^ Digest.to_hex (Digest.string bytes)
      in
      let prepared =
        prepared_for wctx ~program_key ~engine ~program:j.jprogram ~id:j.jid
      in
      (* Per-request signature copy: graph decode declares the graph's
         fresh leaf symbols, and those must not accumulate in the worker's
         long-lived signature, request after request. *)
      let sg = Signature.copy wctx.env.Std_ops.sg in
      let g =
        match
          Codec.Graphs.decode_into ~sg ~infer:wctx.env.Std_ops.infer j.jgraph
        with
        | Ok g -> g
        | Error msg -> reject_bad j.jid ("graph: " ^ msg)
      in
      let fingerprint = Pypm_fuzz.Fuzz.fingerprint g in
      let key = cache_key ~program_key ~options:o ~fingerprint in
      match Cache.find sh.cache key with
      | Some body ->
          Protocol.Result
            { id = j.jid; cached = true; service_s = Obs.monotonic () -. t0; body }
      | None ->
          let inject = inject_of_options ~id:j.jid o in
          (* the process-level fault points, queried before the pass so
             their position in the schedule's stream is fixed: a crash
             here escapes the catch-all below and kills this worker
             domain (the supervisor takes over); a stall holds the job
             past any test-sized deadline so the watchdog reaps it *)
          if Inject.fires inject Inject.Worker_crash then
            raise (Inject.Injected_crash "injected worker crash");
          if Inject.fires inject Inject.Serve_stall then Unix.sleepf stall_s;
          (* clamp: the client chose the count, the server pays for the
             domains — and each worker may hold its own cached team *)
          let domains = max 1 (min 64 o.Protocol.domains) in
          (* the option block folded into one pass configuration *)
          let config =
            {
              Pass.Config.default with
              Pass.Config.check_types = o.Protocol.check_types;
              fuel = o.Protocol.fuel;
              max_rewrites = o.Protocol.max_rewrites;
              deadline_s = o.Protocol.deadline_s;
              quarantine_after = o.Protocol.quarantine_after;
              inject;
              on_error = (if o.Protocol.strict then `Fail else `Quarantine);
              domains;
              team = team_for wctx domains;
            }
          in
          let stats = Pass.run_prepared_cfg ~config prepared g in
          let out_graph = Codec.Graphs.encode g in
          let body =
            Protocol.encode_outcome
              {
                Protocol.graph = out_graph;
                stats_json = Pass.stats_json stats;
                errors = stats.Pass.errors;
                fatal = stats.Pass.fatal;
              }
          in
          Cache.add sh.cache key body;
          Protocol.Result
            { id = j.jid; cached = false; service_s = Obs.monotonic () -. t0;
              body }
    with
    | resp -> finish sh j resp
    | exception Reject resp -> finish sh j resp
    | exception (Inject.Injected_crash _ as e) ->
        (* deliberately NOT contained: the crash escapes to the pool,
           kills this worker, and exercises the supervisor exactly like
           an unanticipated one would *)
        raise e
    | exception ((Stack_overflow | Out_of_memory) as e) ->
        (* the two real exceptions a request must not be able to feed
           back into this worker's next job: the heap or stack that
           raised them is this domain's, so let the supervisor rebuild
           the domain rather than serve on from a wounded one *)
        raise e
    | exception exn ->
        (* the catch-all that keeps a worker alive through anything else
           a request can throw (encode errors, injected pass chaos); the
           client gets a structured failure and the next request
           proceeds *)
        Log.warn (fun m ->
            m "request %d failed: %s" j.jid (Printexc.to_string exn));
        finish sh j
          (Protocol.Server_error { id = j.jid; reason = Printexc.to_string exn })
  end

(* ------------------------------------------------------------------ *)
(* Accept loop                                                        *)
(* ------------------------------------------------------------------ *)

let health_of sh pool ~workers ~draining : Protocol.health =
  {
    Protocol.status = (if draining then "draining" else "ok");
    uptime_s = Obs.monotonic () -. sh.t0;
    workers_alive = Pool.workers_alive pool;
    workers_total = workers;
    restarts = Pool.restarts pool;
    poisoned = Atomic.get sh.poisoned;
    inflight = inflight_count sh;
  }

let handle_frame sh pool ~workers ~draining ~next_uid conn payload =
  match Protocol.decode_request payload with
  | Error msg ->
      Atomic.incr sh.errs;
      send conn (Protocol.Bad_request { id = 0; reason = msg })
  | Ok (Protocol.Stats { id }) ->
      send conn (Protocol.Stats_report { id; stats = server_stats sh })
  | Ok (Protocol.Health { id }) ->
      send conn
        (Protocol.Health_report { id; health = health_of sh pool ~workers ~draining })
  | Ok (Protocol.Optimize { id; program; options; graph }) ->
      if draining then send conn (Protocol.Draining { id })
      else begin
        let job =
          {
            jconn = conn;
            jid = id;
            juid = next_uid ();
            jadmitted = Obs.monotonic ();
            jdone = Atomic.make false;
            jprogram = program;
            joptions = options;
            jgraph = graph;
          }
        in
        retain conn;
        register sh job;
        match Pool.submit pool job with
        | `Accepted -> ()
        | `Overloaded ->
            Obs.emit (Obs.Request_shed { id });
            finish sh job (Protocol.Overloaded { id })
      end

(* The deadline watchdog: runs on the accept-loop domain once per select
   round. A job past its admission-to-completion budget is answered
   [Deadline_exceeded] now; if a worker is still grinding on it, that
   worker's eventual result loses the completion claim and is discarded.
   The watchdog cannot preempt the worker (domains are not killable
   mid-computation) — it bounds the {e client's} wait, and the
   supervisor bounds the damage if the worker never comes back. *)
let reap_expired sh = function
  | None -> ()
  | Some deadline ->
      let now = Obs.monotonic () in
      let expired =
        Mutex.protect sh.jobs_mutex (fun () ->
            Hashtbl.fold
              (fun _ j acc ->
                if now -. j.jadmitted > deadline && not (Atomic.get j.jdone)
                then j :: acc
                else acc)
              sh.inflight [])
      in
      List.iter
        (fun j ->
          Log.warn (fun m ->
              m "request %d exceeded its %.3f s deadline; reaping" j.jid
                deadline);
          finish sh j
            (Protocol.Deadline_exceeded
               { id = j.jid; elapsed_s = now -. j.jadmitted }))
        expired

(* Probe an existing socket file before binding: a live server answers
   the connect (leave it alone — refuse to start); a stale socket left
   by a crashed process refuses it (reclaim by unlinking). Anything
   that is not a socket is never touched. *)
let reclaim_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if live then
        Error
          (Printf.sprintf
             "%s: a server is already accepting connections on this socket"
             path)
      else begin
        Log.info (fun m -> m "reclaiming stale socket %s" path);
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Ok ()
      end
  | _ -> Error (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

let ( let* ) = Result.bind

let run ?(on_ready = fun () -> ()) ?(stop = fun () -> false)
    ?(drain = fun () -> false) ?(signals = false) (cfg : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let draining = Atomic.make false in
  if signals then begin
    (* first signal: drain gracefully; second: stop being graceful *)
    let on_term _ =
      if Atomic.get draining then exit 1 else Atomic.set draining true
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_term);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_term)
  end;
  let sh =
    {
      cache = Cache.create ~max_bytes:cfg.cache_bytes;
      served = Atomic.make 0;
      shed = Atomic.make 0;
      errs = Atomic.make 0;
      poisoned = Atomic.make 0;
      t0 = Obs.monotonic ();
      n_workers = cfg.workers;
      jobs_mutex = Mutex.create ();
      inflight = Hashtbl.create 64;
    }
  in
  let uid = Atomic.make 0 in
  let next_uid () = Atomic.fetch_and_add uid 1 in
  let pool =
    (* [wctxs] is written by [setup] and read by [teardown], both of
       which run on the owning worker's domain — no cross-domain access
       (the supervisor joins a crashed domain before its replacement's
       [setup] runs, so even a restart never overlaps). *)
    let wctxs = Array.make cfg.workers None in
    Pool.create ~workers:cfg.workers ~queue_bound:cfg.queue_bound
      ~max_restarts:cfg.restart_budget
      ~teardown:(fun wid ->
        Option.iter
          (fun (w : wctx) ->
            Option.iter Team.shutdown w.team;
            w.team <- None)
          wctxs.(wid))
      ~on_crash:(fun (j : job) exn ->
        Log.warn (fun m ->
            m "request %d poisoned two workers: %s" j.jid
              (Printexc.to_string exn));
        finish sh j
          (Protocol.Worker_crashed
             { id = j.jid; reason = Printexc.to_string exn }))
      (fun wid ->
        let wctx =
          { env = Std_ops.make (); prepared = Hashtbl.create 8; team = None }
        in
        wctxs.(wid) <- Some wctx;
        fun job -> handle_job sh wctx job)
  in
  let* () = reclaim_socket cfg.socket_path in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let* () =
    match Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path) with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        Pool.shutdown pool;
        Error
          (Printf.sprintf "cannot bind %s: %s" cfg.socket_path
             (Unix.error_message e))
  in
  Unix.listen listen_fd 64;
  Log.info (fun m ->
      m "serving on %s: %d worker(s), queue bound %d, %d-byte cache"
        cfg.socket_path cfg.workers cfg.queue_bound cfg.cache_bytes);
  on_ready ();
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn (c : conn) =
    Hashtbl.remove conns c.fd;
    Mutex.protect c.wmutex (fun () ->
        c.alive <- false;
        if c.pending = 0 then close_fd_once c)
  in
  let buf = Bytes.create 65536 in
  let drain_t0 = ref None in
  let rec loop () =
    if not (stop ()) then begin
      if (not (Atomic.get draining)) && drain () then
        Atomic.set draining true;
      let is_draining = Atomic.get draining in
      (match (is_draining, !drain_t0) with
      | true, None ->
          drain_t0 := Some (Obs.monotonic ());
          Log.info (fun m ->
              m "draining: %d in-flight job(s), %.1f s budget"
                (inflight_count sh) cfg.drain_timeout_s)
      | _ -> ());
      reap_expired sh cfg.job_deadline_s;
      let drained =
        match !drain_t0 with
        | None -> false
        | Some t ->
            inflight_count sh = 0
            || Obs.monotonic () -. t > cfg.drain_timeout_s
      in
      if not drained then begin
        let fds =
          (* a draining server stops accepting new connections; existing
             ones stay readable so in-flight answers can be read and new
             requests get a structured [Draining] *)
          (if is_draining then [] else [ listen_fd ])
          @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
        in
        let readable =
          match Unix.select fds [] [] 0.2 with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              match Unix.accept listen_fd with
              | cfd, _ ->
                  Hashtbl.replace conns cfd
                    {
                      fd = cfd;
                      reader =
                        Protocol.Reader.create
                          ~max_frame:cfg.max_frame_bytes ();
                      wmutex = Mutex.create ();
                      alive = true;
                      pending = 0;
                      closed = false;
                    }
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some conn -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> close_conn conn
                  | n ->
                      Protocol.Reader.feed conn.reader
                        (Bytes.sub_string buf 0 n);
                      let rec drain_frames () =
                        match Protocol.Reader.next conn.reader with
                        | `Frame payload ->
                            handle_frame sh pool ~workers:cfg.workers
                              ~draining:(Atomic.get draining) ~next_uid conn
                              payload;
                            drain_frames ()
                        | `Await -> ()
                        | `Error msg ->
                            (* oversize or mangled framing is sticky: no
                               frame boundary to resync on *)
                            Atomic.incr sh.errs;
                            send conn
                              (Protocol.Bad_request { id = 0; reason = msg });
                            close_conn conn
                      in
                      drain_frames ()
                  | exception
                      Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                      close_conn conn
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
          readable;
        (* reap connections whose writes failed *)
        Hashtbl.iter
          (fun _ c -> if not c.alive then close_conn c)
          (Hashtbl.copy conns);
        loop ()
      end
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* jobs the drain budget did not cover get a terminal answer now,
         before their connections are torn down *)
      (let now = Obs.monotonic () in
       let stragglers =
         Mutex.protect sh.jobs_mutex (fun () ->
             Hashtbl.fold (fun _ j acc -> j :: acc) sh.inflight [])
       in
       List.iter
         (fun j ->
           finish sh j
             (Protocol.Deadline_exceeded
                { id = j.jid; elapsed_s = now -. j.jadmitted }))
         stragglers);
      (* drain queued jobs before tearing connections down so in-flight
         requests still answer (their completions lose the claim and are
         discarded silently) *)
      Pool.shutdown pool;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Hashtbl.iter
        (fun _ c -> Mutex.protect c.wmutex (fun () -> close_fd_once c))
        conns;
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      loop ();
      Ok ())
