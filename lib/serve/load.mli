(** The load harness ([pypmc load]).

    Spawns N client domains against a running server. Each client opens
    its own connection, builds a small pool of transformer graphs
    deterministically from its seed, and issues blocking
    request/response rounds under a per-request timeout. Distinct
    clients build the same model configurations against their own
    environments — different fresh symbols, identical fingerprints — so
    cross-client cache hits are part of what the harness measures.

    Flow-control answers ([Overloaded], [Draining]) and transient socket
    failures (broken connection, per-request timeout) are retried with
    jittered exponential backoff — jittered from the client's
    deterministic stream, so clients that shed together do not retry
    together; a broken socket is abandoned and reconnected, which rides
    out a server crash-restart or drain-handover. [Worker_crashed] and
    [Deadline_exceeded] are terminal structured answers: counted
    separately, never retried, and {e not} protocol errors. *)

type result = {
  requests : int;  (** total requested *)
  ok : int;  (** [Result] responses received *)
  cached : int;  (** ... of which answered from the cache *)
  overloaded : int;  (** overload retries observed *)
  protocol_errors : int;
      (** undecodable frames/bodies, unexpected response kinds,
          [Bad_request], [Server_error] *)
  pass_fatals : int;  (** outcomes whose pass ended with [fatal] *)
  worker_crashes : int;  (** [Worker_crashed] answers (poison pills) *)
  deadlines : int;  (** [Deadline_exceeded] answers (watchdog reaps) *)
  drained : int;  (** [Draining] answers observed before retrying *)
  reconnects : int;  (** connections abandoned after a socket failure *)
  timeouts : int;  (** requests that hit the per-request timeout *)
  wall_s : float;
  throughput : float;  (** ok responses per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  hit_rate : float;  (** cached / ok *)
}

(** [run ~socket ~clients ~requests ~seed ()] — [requests] is the total
    across all clients, split evenly. [program] is the server-side
    pattern set name (default ["both"]); [variants] is the number of
    distinct graphs each client cycles through (default 4) — the
    cache-miss pressure knob: low values measure the cache, high values
    measure the workers; [options] defaults to
    {!Pypm_serialize.Protocol.default_options} (plan engine);
    [request_timeout_s] (default 30) bounds each send-to-answer round,
    after which the connection is abandoned and the request retried on a
    fresh one. *)
val run :
  socket:string ->
  clients:int ->
  requests:int ->
  seed:int ->
  ?program:string ->
  ?variants:int ->
  ?options:Pypm_serialize.Protocol.options ->
  ?request_timeout_s:float ->
  unit ->
  result

val pp : Format.formatter -> result -> unit

(** [percentile sorted p] is the ceiling-based nearest-rank percentile of
    an ascending-sorted array: element at index [ceil ((n-1) * p / 100)],
    0 for an empty array. Exposed for the unit tests pinning
    p50/p95/p99. *)
val percentile : float array -> float -> float
