open Pypm_term
open Pypm_pattern
open Pypm_engine
module S = Skeleton

(* ------------------------------------------------------------------ *)
(* Interval reasoning over attribute arithmetic                        *)
(* ------------------------------------------------------------------ *)

(* An interval over the integers; [None] bounds are infinite. Attribute
   values are naturals, but [Sub] can take expressions negative. *)
type iv = { lo : int option; hi : int option }

let top = { lo = None; hi = None }
let point n = { lo = Some n; hi = Some n }

(* What an attribute can evaluate to, when it evaluates at all. The
   structural [size]/[depth] are at least 1 by construction of [Term.t];
   [output_arity] is at least 1 by the signature's contract; [rank] is
   bounded by the dims the tensor interpretation exposes (dim0..dim7).
   Everything else is some natural. *)
let attr_iv = function
  | "size" | "depth" | "output_arity" -> { lo = Some 1; hi = None }
  | "rank" -> { lo = Some 0; hi = Some 8 }
  | _ -> { lo = Some 0; hi = None }

let map2 f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

let rec expr_iv (e : Guard.expr) =
  match e with
  | Const n -> point n
  | Var_attr (_, a) | Term_attr (_, a) | Fvar_attr (_, a) | Sym_attr (_, a) ->
      attr_iv a
  | Add (a, b) ->
      let x = expr_iv a and y = expr_iv b in
      { lo = map2 ( + ) x.lo y.lo; hi = map2 ( + ) x.hi y.hi }
  | Sub (a, b) ->
      let x = expr_iv a and y = expr_iv b in
      { lo = map2 ( - ) x.lo y.hi; hi = map2 ( - ) x.hi y.lo }
  | Mul (a, b) -> (
      let x = expr_iv a and y = expr_iv b in
      (* only the all-nonnegative case; anything signed goes to top *)
      match (x.lo, y.lo) with
      | Some lx, Some ly when lx >= 0 && ly >= 0 ->
          { lo = Some (lx * ly); hi = map2 ( * ) x.hi y.hi }
      | _ -> top)
  | Mod (a, b) -> (
      let x = expr_iv a and y = expr_iv b in
      (* defined only for a nonzero divisor; [a mod b] with a >= 0, b >= 1
         lies in [0, min (a, b - 1)] *)
      match (x.lo, y.lo) with
      | Some lx, Some ly when lx >= 0 && ly >= 1 ->
          let hi =
            match (x.hi, y.hi) with
            | Some ha, Some hb -> Some (min ha (hb - 1))
            | Some ha, None -> Some ha
            | None, Some hb -> Some (hb - 1)
            | None, None -> None
          in
          { lo = Some 0; hi }
      | _ -> top)

let rec expr_equal (a : Guard.expr) (b : Guard.expr) =
  match (a, b) with
  | Const n, Const m -> n = m
  | Var_attr (x, s), Var_attr (y, t) -> String.equal x y && String.equal s t
  | Term_attr (u, s), Term_attr (v, t) -> Term.equal u v && String.equal s t
  | Fvar_attr (x, s), Fvar_attr (y, t) -> String.equal x y && String.equal s t
  | Sym_attr (x, s), Sym_attr (y, t) ->
      Symbol.equal x y && String.equal s t
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Mod (a1, a2), Mod (b1, b2) -> expr_equal a1 b1 && expr_equal a2 b2
  | _ -> false

type verdict = [ `Unsat | `Valid | `Unknown ]

(* Three-valued comparison verdicts on the evaluable domain: a verdict
   only speaks about substitutions under which the guard evaluates, which
   is exactly what soundness needs — failure to evaluate fails the match
   just like [`Unsat] does. *)
let v_not = function `Unsat -> `Valid | `Valid -> `Unsat | `Unknown -> `Unknown

let v_and a b =
  match (a, b) with
  | `Unsat, _ | _, `Unsat -> `Unsat
  | `Valid, `Valid -> `Valid
  | _ -> `Unknown

let v_or a b =
  match (a, b) with
  | `Valid, _ | _, `Valid -> `Valid
  | `Unsat, `Unsat -> `Unsat
  | _ -> `Unknown

let lt_always a b = match (a.hi, b.lo) with Some h, Some l -> h < l | _ -> false
let le_always a b =
  match (a.hi, b.lo) with Some h, Some l -> h <= l | _ -> false

let rec guard_status (g : Guard.t) : verdict =
  match g with
  | True -> `Valid
  | False -> `Unsat
  | Eq (a, b) ->
      if expr_equal a b then `Valid
      else
        let x = expr_iv a and y = expr_iv b in
        if lt_always x y || lt_always y x then `Unsat
        else if
          match (x.lo, x.hi, y.lo, y.hi) with
          | Some l1, Some h1, Some l2, Some h2 -> l1 = h1 && l2 = h2 && l1 = l2
          | _ -> false
        then `Valid
        else `Unknown
  | Ne (a, b) -> v_not (guard_status (Eq (a, b)))
  | Lt (a, b) ->
      if expr_equal a b then `Unsat
      else
        let x = expr_iv a and y = expr_iv b in
        if lt_always x y then `Valid
        else if le_always y x then `Unsat
        else `Unknown
  | Le (a, b) ->
      if expr_equal a b then `Valid
      else
        let x = expr_iv a and y = expr_iv b in
        if le_always x y then `Valid
        else if lt_always y x then `Unsat
        else `Unknown
  | And (a, b) -> v_and (guard_status a) (guard_status b)
  | Or (a, b) -> v_or (guard_status a) (guard_status b)
  | Not a -> v_not (guard_status a)

(* ------------------------------------------------------------------ *)
(* Canonicalized branches                                              *)
(* ------------------------------------------------------------------ *)

let path_str p = String.concat "." (List.map string_of_int p)
let canon_var p = "v@" ^ path_str p
let canon_fvar p = "F@" ^ path_str p

(* A skeleton branch with every variable renamed to its first binding
   position, so branches of different patterns become comparable. *)
type cbranch = {
  orig : S.branch;
  instrs : S.instr list;  (** canonicalized *)
  var_paths : (string, S.path list) Hashtbl.t;
      (** canonical var -> all its binding paths, in order *)
  fvar_paths : (string, S.path list) Hashtbl.t;
  bind_class : (string, string) Hashtbl.t;  (** path_str -> canonical var *)
  fbind_class : (string, string) Hashtbl.t;
  guards : Guard.t list;  (** canonicalized *)
  guard_names : Symbol.Set.t;  (** canonical names mentioned by guards *)
  unsat : string option;  (** why this branch can never succeed, if so *)
}

(* [None] when the branch cannot be canonicalized faithfully (a name used
   both as a term and as a function variable would collide in
   [Guard.rename]'s single namespace). *)
let canonicalize (b : S.branch) : cbranch option =
  let vmap = Hashtbl.create 8 and fmap = Hashtbl.create 4 in
  List.iter
    (fun (i : S.instr) ->
      match i with
      | Bind_var (p, x) ->
          if not (Hashtbl.mem vmap x) then Hashtbl.add vmap x (canon_var p)
      | Bind_fvar (p, f) ->
          if not (Hashtbl.mem fmap f) then Hashtbl.add fmap f (canon_fvar p)
      | _ -> ())
    b.instrs;
  let clash =
    Hashtbl.fold (fun x _ acc -> acc || Hashtbl.mem fmap x) vmap false
  in
  if clash then None
  else begin
    let ren n =
      match Hashtbl.find_opt vmap n with
      | Some c -> c
      | None -> (
          match Hashtbl.find_opt fmap n with Some c -> c | None -> n)
    in
    let var_paths = Hashtbl.create 8 and fvar_paths = Hashtbl.create 4 in
    let bind_class = Hashtbl.create 8 and fbind_class = Hashtbl.create 4 in
    let push tbl c p =
      Hashtbl.replace tbl c (Option.value (Hashtbl.find_opt tbl c) ~default:[] @ [ p ])
    in
    let guards = ref [] and guard_names = ref Symbol.Set.empty in
    let unsat = ref None in
    let bound = Hashtbl.create 8 in
    let instrs =
      List.map
        (fun (i : S.instr) : S.instr ->
          match i with
          | Bind_var (p, x) ->
              let c = ren x in
              push var_paths c p;
              Hashtbl.replace bind_class (path_str p) c;
              Hashtbl.replace bound c ();
              Bind_var (p, c)
          | Bind_fvar (p, f) ->
              let c = ren f in
              push fvar_paths c p;
              Hashtbl.replace fbind_class (path_str p) c;
              Hashtbl.replace bound c ();
              Bind_fvar (p, c)
          | Check_bound x ->
              let c = ren x in
              if (not (Hashtbl.mem bound c)) && !unsat = None then
                unsat :=
                  Some
                    (Printf.sprintf
                       "existential %s is checked before any occurrence \
                        binds it" x);
              Check_bound c
          | Check_fbound f ->
              let c = ren f in
              if (not (Hashtbl.mem bound c)) && !unsat = None then
                unsat :=
                  Some
                    (Printf.sprintf
                       "function existential %s is checked before any \
                        occurrence binds it" f);
              Check_fbound c
          | Check_guard g ->
              let g = Guard.rename ren g in
              guards := g :: !guards;
              guard_names :=
                Symbol.Set.union !guard_names
                  (Symbol.Set.union (Guard.vars g) (Guard.fvars g));
              Check_guard g
          | Check_head _ | Check_arity _ -> i)
        b.instrs
    in
    let guards = List.rev !guards in
    (match !unsat with
    | Some _ -> ()
    | None -> (
        (* a guard naming a variable the branch never binds can never
           evaluate; under backtrack semantics (the production matcher's
           default) an unevaluable guard fails the match, so the branch is
           dead *)
        match
          Symbol.Set.elements !guard_names
          |> List.find_opt (fun n -> not (Hashtbl.mem bound n))
        with
        | Some n ->
            unsat :=
              Some
                (Printf.sprintf
                   "a guard mentions %s, which the branch never binds, so \
                    the guard can never evaluate" n)
        | None -> (
            match guard_status (Guard.conj guards) with
            | `Unsat ->
                unsat :=
                  Some "its guards are unsatisfiable over the attribute ranges"
            | _ -> ())));
    Some
      {
        orig = b;
        instrs;
        var_paths;
        fvar_paths;
        bind_class;
        fbind_class;
        guards;
        guard_names = !guard_names;
        unsat = !unsat;
      }
  end

(* Does success of [b] guarantee the subject has a node at [p]?  Yes when
   [b] itself touches [p], or checks the arity of [p]'s parent to be wide
   enough. The root always exists. *)
let path_exists_in (b : cbranch) (p : S.path) =
  (match p with [] -> true | _ -> false)
  || List.exists
       (fun (i : S.instr) ->
         match i with
         | Check_head (q, _, _) | Check_arity (q, _) | Bind_var (q, _)
         | Bind_fvar (q, _) ->
             S.path_equal p q
         | _ -> false)
       b.instrs
  ||
  let rec split acc = function
    | [ last ] -> Some (List.rev acc, last)
    | x :: rest -> split (x :: acc) rest
    | [] -> None
  in
  match split [] p with
  | None -> false
  | Some (parent, idx) ->
      List.exists
        (fun (i : S.instr) ->
          match i with
          | Check_head (q, _, n) | Check_arity (q, n) ->
              S.path_equal parent q && idx < n
          | _ -> false)
        b.instrs

(* [`Valid] only says "true whenever it evaluates"; to discharge a guard
   as always-true we additionally need evaluation to be guaranteed. We
   assume only the structural attributes [size] and [depth] are total
   (defined on every term by every interp in this tree); the guard must
   mention nothing else, every variable it mentions must be bound by the
   branch itself, and [Sub]/[Mod] are excluded (undefined on negative
   results / zero divisors). *)
let guard_evaluates ~var_ok (g : Guard.t) =
  let total_attr a = String.equal a "size" || String.equal a "depth" in
  let rec expr_ok (e : Guard.expr) =
    match e with
    | Guard.Const _ -> true
    | Guard.Var_attr (x, a) -> total_attr a && var_ok x
    | Guard.Term_attr (_, a) -> total_attr a
    | Guard.Fvar_attr _ | Guard.Sym_attr _ -> false
    | Guard.Add (e1, e2) | Guard.Mul (e1, e2) -> expr_ok e1 && expr_ok e2
    | Guard.Sub _ | Guard.Mod _ -> false
  in
  let rec go (g : Guard.t) =
    match g with
    | Guard.True | Guard.False -> true
    | Guard.Eq (a, b) | Guard.Ne (a, b) | Guard.Lt (a, b) | Guard.Le (a, b)
      ->
        expr_ok a && expr_ok b
    | Guard.And (a, b) | Guard.Or (a, b) -> go a && go b
    | Guard.Not a -> go a
  in
  go g

let guard_always_evaluates (b : cbranch) =
  guard_evaluates ~var_ok:(Hashtbl.mem b.var_paths)

(* [cimplies gen spec]: success of [spec] on a subject implies success of
   [gen] on the same subject — the cross-pattern subsumption workhorse.
   Every constraint of [gen] must be discharged by constraints [spec]
   guarantees. Sound, not complete. *)
let cimplies (gen : cbranch) (spec : cbranch) =
  gen.unsat = None
  &&
  (* all binding paths of canonical var [c] in [spec]'s class structure
     collapse to one class *)
  let same_class class_tbl paths =
    match paths with
    | [] -> true
    | p0 :: rest -> (
        match Hashtbl.find_opt class_tbl (path_str p0) with
        | None -> false
        | Some c0 ->
            List.for_all
              (fun p ->
                match Hashtbl.find_opt class_tbl (path_str p) with
                | Some c -> String.equal c c0
                | None -> false)
              rest)
  in
  let implied (i : S.instr) =
    match i with
    | Check_head (p, f, n) ->
        List.exists (S.instr_equal (Check_head (p, f, n))) spec.instrs
    | Check_arity (p, n) ->
        List.exists
          (fun (j : S.instr) ->
            match j with
            | Check_arity (q, m) | Check_head (q, _, m) ->
                S.path_equal p q && n = m
            | _ -> false)
          spec.instrs
    | Bind_var (p, c) ->
        let paths =
          Option.value (Hashtbl.find_opt gen.var_paths c) ~default:[ p ]
        in
        let constrained =
          List.length paths > 1 || Symbol.Set.mem c gen.guard_names
        in
        if constrained then same_class spec.bind_class paths
        else path_exists_in spec p
    | Bind_fvar (p, c) ->
        let paths =
          Option.value (Hashtbl.find_opt gen.fvar_paths c) ~default:[ p ]
        in
        let constrained =
          List.length paths > 1 || Symbol.Set.mem c gen.guard_names
        in
        if constrained then same_class spec.fbind_class paths
        else path_exists_in spec p
    | Check_bound _ | Check_fbound _ ->
        (* [gen] is satisfiable, so the check's variable is bound by an
           earlier instruction of [gen] itself; once the binds are
           implied, the check adds nothing. *)
        true
    | Check_guard g -> (
        match guard_status g with
        | `Valid when guard_always_evaluates gen g -> true
        | _ ->
            (* rename [gen]'s canonical names to [spec]'s through the
               shared binding positions, then look for a literally equal
               guard of [spec] *)
            let ok = ref true in
            let to_spec n =
              let first tbl =
                match Hashtbl.find_opt tbl n with
                | Some (p :: _) -> Some p
                | _ -> None
              in
              let cls path tbl =
                match Hashtbl.find_opt tbl (path_str path) with
                | Some c -> c
                | None ->
                    ok := false;
                    n
              in
              match first gen.var_paths with
              | Some p -> cls p spec.bind_class
              | None -> (
                  match first gen.fvar_paths with
                  | Some p -> cls p spec.fbind_class
                  | None -> n)
            in
            let g' = Guard.rename to_spec g in
            !ok && List.exists (Guard.equal g') spec.guards)
  in
  List.for_all implied gen.instrs

(* ------------------------------------------------------------------ *)
(* Pattern-level subsumption                                           *)
(* ------------------------------------------------------------------ *)

let cbranches p =
  match S.extract p with
  | None -> None
  | Some bs ->
      let cs = List.filter_map canonicalize bs in
      if List.length cs = List.length bs then Some cs else None

let subsumes_c (ps : cbranch list) (qs : cbranch list) =
  let live_q = List.filter (fun c -> c.unsat = None) qs in
  let live_p = List.filter (fun c -> c.unsat = None) ps in
  if
    List.for_all
      (fun bq -> List.exists (fun bp -> cimplies bp bq) live_p)
      live_q
  then `Yes
  else `Unknown

let subsumes p q =
  match (cbranches p, cbranches q) with
  | Some ps, Some qs -> subsumes_c ps qs
  | _ -> `Unknown

(* ------------------------------------------------------------------ *)
(* Witness construction                                                *)
(* ------------------------------------------------------------------ *)

(* Build a term satisfying the structural constraints of a set of branches
   at once: merge their head/arity constraints, force subterm equality for
   every (function-)variable bound at several positions, close under
   congruence, and concretize — filling unconstrained positions with a
   nullary operator from the signature. The result is a {e candidate}:
   callers must verify it with the matcher before reporting it. *)

module Uf = struct
  (* union-find over path strings *)
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let rec find (t : t) x =
    match Hashtbl.find_opt t x with
    | None | Some "" -> x
    | Some p ->
        let r = find t p in
        if not (String.equal r p) then Hashtbl.replace t x r;
        r

  let union t a b =
    let ra = find t a and rb = find t b in
    if not (String.equal ra rb) then Hashtbl.replace t ra rb

  let ensure t x = if not (Hashtbl.mem t x) then Hashtbl.replace t x ""
end

exception No_witness

let build_witness ~sg (branches : cbranch list) : Term.t option =
  let uf = Uf.create () in
  (* path_str -> path, for every path we have seen *)
  let paths : (string, S.path) Hashtbl.t = Hashtbl.create 32 in
  let heads : (string, Symbol.t * int) Hashtbl.t = Hashtbl.create 16 in
  let arities : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let touch p =
    let k = path_str p in
    if not (Hashtbl.mem paths k) then Hashtbl.replace paths k p;
    Uf.ensure uf k;
    k
  in
  try
    (* 1. structural constraints *)
    List.iter
      (fun b ->
        List.iter
          (fun (i : S.instr) ->
            match i with
            | S.Check_head (p, f, n) ->
                let k = touch p in
                (match Hashtbl.find_opt heads k with
                | Some (g, _) when not (Symbol.equal f g) -> raise No_witness
                | _ -> ());
                Hashtbl.replace heads k (f, n)
            | S.Check_arity (p, n) ->
                let k = touch p in
                (match Hashtbl.find_opt arities k with
                | Some m when m <> n -> raise No_witness
                | _ -> ());
                Hashtbl.replace arities k n
            | S.Bind_var (p, _) | S.Bind_fvar (p, _) -> ignore (touch p)
            | _ -> ())
          b.instrs)
      branches;
    ignore (touch []);
    (* 2. equality classes from repeated binds (head equality for function
       variables is over-approximated by full subterm equality) *)
    List.iter
      (fun b ->
        let unify_paths tbl =
          Hashtbl.iter
            (fun _ ps ->
              match List.map touch ps with
              | k0 :: rest -> List.iter (fun k -> Uf.union uf k0 k) rest
              | [] -> ())
            tbl
        in
        unify_paths b.var_paths;
        unify_paths b.fvar_paths)
      branches;
    (* 3. congruence closure: members of one class must have pairwise-equal
       children, so corresponding child paths join too. Each round may
       surface new paths; cap the work to stay total. *)
    let arity_of k =
      match Hashtbl.find_opt heads k with
      | Some (_, n) -> Some n
      | None -> Hashtbl.find_opt arities k
    in
    let changed = ref true and rounds = ref 0 in
    while !changed do
      changed := false;
      incr rounds;
      if !rounds > 64 || Hashtbl.length paths > 4096 then raise No_witness;
      (* occurs check: a class holding a path and a strict ancestor would
         denote an infinite term *)
      let members = Hashtbl.create 16 in
      Hashtbl.iter
        (fun k p ->
          let r = Uf.find uf k in
          Hashtbl.replace members r
            (p :: Option.value (Hashtbl.find_opt members r) ~default:[]))
        paths;
      Hashtbl.iter
        (fun _ ps ->
          List.iter
            (fun p ->
              List.iter
                (fun q ->
                  let rec prefix a b =
                    match (a, b) with
                    | [], _ :: _ -> true
                    | x :: a', y :: b' -> x = y && prefix a' b'
                    | _ -> false
                  in
                  if prefix p q then raise No_witness)
                ps)
            ps)
        members;
      (* propagate constraints and child unions across each class *)
      Hashtbl.iter
        (fun r ps ->
          match ps with
          | [] | [ _ ] -> ()
          | p0 :: rest ->
              ignore r;
              let n =
                List.fold_left
                  (fun acc p ->
                    match arity_of (path_str p) with
                    | Some n -> (
                        match acc with
                        | Some m when m <> n -> raise No_witness
                        | _ -> Some n)
                    | None -> acc)
                  None ps
              in
              let head =
                List.fold_left
                  (fun acc p ->
                    match Hashtbl.find_opt heads (path_str p) with
                    | Some (f, n) -> (
                        match acc with
                        | Some (g, _) when not (Symbol.equal f g) ->
                            raise No_witness
                        | _ -> Some (f, n))
                    | None -> acc)
                  None ps
              in
              List.iter
                (fun p ->
                  let k = path_str p in
                  (match head with
                  | Some hd when Hashtbl.find_opt heads k <> Some hd ->
                      Hashtbl.replace heads k hd;
                      changed := true
                  | _ -> ());
                  match n with
                  | Some n when Hashtbl.find_opt arities k <> Some n ->
                      Hashtbl.replace arities k n;
                      changed := true
                  | _ -> ())
                ps;
              (* join corresponding children for every child index any
                 member mentions *)
              let child_idxs = Hashtbl.create 4 in
              Hashtbl.iter
                (fun _ q ->
                  List.iter
                    (fun p ->
                      let lp = List.length p in
                      if
                        List.length q = lp + 1
                        && S.path_equal p
                             (List.filteri (fun i _ -> i < lp) q)
                      then
                        Hashtbl.replace child_idxs (List.nth q lp) ())
                    ps)
                paths;
              Hashtbl.iter
                (fun i () ->
                  let k0 = touch (p0 @ [ i ]) in
                  List.iter
                    (fun p ->
                      let k = touch (p @ [ i ]) in
                      if
                        not
                          (String.equal (Uf.find uf k) (Uf.find uf k0))
                      then begin
                        Uf.union uf k0 k;
                        changed := true
                      end)
                    rest)
                child_idxs)
        members
    done;
    (* 4. concretize top-down, one term per class *)
    let filler_const =
      match
        List.find_opt (fun (d : Signature.decl) -> d.arity = 0) (Signature.decls sg)
      with
      | Some d -> Term.const d.name
      | None -> Term.const "_"
    in
    let memo : (string, Term.t) Hashtbl.t = Hashtbl.create 16 in
    let rec build depth p =
      if depth > 64 then raise No_witness;
      let k = path_str p in
      Uf.ensure uf k;
      let r = Uf.find uf k in
      match Hashtbl.find_opt memo r with
      | Some t -> t
      | None ->
          let t =
            match Hashtbl.find_opt heads r with
            | Some (f, n) ->
                Term.app f (List.init n (fun i -> build (depth + 1) (p @ [ i ])))
            | None -> (
                match Hashtbl.find_opt arities r with
                | Some n ->
                    Term.app
                      ("_f" ^ string_of_int n)
                      (List.init n (fun i -> build (depth + 1) (p @ [ i ])))
                | None -> filler_const)
          in
          Hashtbl.replace memo r t;
          t
    in
    (* constraints were propagated to every member, so the representative
       carries them; look them up through the representative *)
    Hashtbl.iter
      (fun k p ->
        let r = Uf.find uf k in
        ignore p;
        (match Hashtbl.find_opt heads k with
        | Some hd when not (Hashtbl.mem heads r) -> Hashtbl.replace heads r hd
        | _ -> ());
        match Hashtbl.find_opt arities k with
        | Some n when not (Hashtbl.mem arities r) -> Hashtbl.replace arities r n
        | _ -> ())
      paths;
    Some (build 0 [])
  with No_witness -> None

let verified_witness ~sg ~interp (pats : Pattern.t list)
    (branches : cbranch list) : Term.t option =
  match build_witness ~sg branches with
  | None -> None
  | Some t ->
      if
        List.for_all
          (fun p ->
            Pypm_semantics.Outcome.is_matched
              (Pypm_semantics.Matcher.matches ~interp p t))
          pats
      then Some t
      else None

let overlap_witness ~sg ~interp p q =
  match (cbranches p, cbranches q) with
  | Some ps, Some qs ->
      let live = List.filter (fun c -> c.unsat = None) in
      let rec first_pair = function
        | [] -> None
        | bp :: rest -> (
            let rec try_qs = function
              | [] -> None
              | bq :: qrest -> (
                  match verified_witness ~sg ~interp [ p; q ] [ bp; bq ] with
                  | Some t -> Some t
                  | None -> try_qs qrest)
            in
            match try_qs (live qs) with
            | Some t -> Some t
            | None -> first_pair rest)
      in
      first_pair (live ps)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

type kind =
  | Dead_pattern
  | Dead_branch
  | Shadowed_branch
  | Subsumed_pattern
  | Overlapping_patterns
  | Unsat_guard
  | Vacuous_guard

type diagnostic = {
  severity : Wf.severity;
  kind : kind;
  patterns : string list;
  witness : Term.t option;
  explanation : string;
}

let kind_name = function
  | Dead_pattern -> "dead-pattern"
  | Dead_branch -> "dead-branch"
  | Shadowed_branch -> "shadowed-branch"
  | Subsumed_pattern -> "subsumed-pattern"
  | Overlapping_patterns -> "overlapping-patterns"
  | Unsat_guard -> "unsat-guard"
  | Vacuous_guard -> "vacuous-guard"

let errors ds = List.filter (fun d -> d.severity = Wf.Error) ds
let warnings ds = List.filter (fun d -> d.severity = Wf.Warning) ds

(* Guard scan: every guard of every pattern, [Mu] bodies and match
   constraints included — interval reasoning needs no skeleton. *)
let scan_guards add pname (p : Pattern.t) =
  let report where g =
    match guard_status g with
    | `Unsat ->
        add
          {
            severity = Wf.Error;
            kind = Unsat_guard;
            patterns = [ pname ];
            witness = None;
            explanation =
              Printf.sprintf
                "%s: guard %s can never hold, so the guarded subpattern \
                 never matches"
                where (Guard.to_string g);
          }
    | `Valid -> (
        (* "never filters" also needs guaranteed evaluation: a [`Valid]
           guard over a partial attribute still filters terms on which the
           attribute is undefined *)
        match g with
        | True -> ()
        | _ when not (guard_evaluates ~var_ok:(fun _ -> true) g) -> ()
        | _ ->
            add
              {
                severity = Wf.Warning;
                kind = Vacuous_guard;
                patterns = [ pname ];
                witness = None;
                explanation =
                  Printf.sprintf
                    "%s: guard %s is true whenever it evaluates — it never \
                     filters"
                    where (Guard.to_string g);
              })
    | `Unknown -> ()
  in
  let rec go (p : Pattern.t) =
    match p with
    | Var _ | Call _ -> ()
    | App (_, ps) | Fapp (_, ps) -> List.iter go ps
    | Alt (a, b) -> go a; go b
    | Guarded (p1, g) ->
        report ("pattern " ^ pname) g;
        go p1
    | Exists (_, p1) | Exists_f (_, p1) -> go p1
    | Constr (a, b, _) -> go a; go b
    | Mu (m, _) -> go m.body
  in
  go p

let scan_rule_guard add pname (r : Rule.t) =
  match guard_status r.guard with
  | `Unsat ->
      add
        {
          severity = Wf.Error;
          kind = Unsat_guard;
          patterns = [ pname ];
          witness = None;
          explanation =
            Printf.sprintf
              "rule %s: guard %s can never hold, so the rule never fires"
              r.rule_name
              (Guard.to_string r.guard);
        }
  | `Valid -> (
      match r.guard with
      | True -> ()
      | g when not (guard_evaluates ~var_ok:(fun _ -> true) g) -> ()
      | g ->
          add
            {
              severity = Wf.Warning;
              kind = Vacuous_guard;
              patterns = [ pname ];
              witness = None;
              explanation =
                Printf.sprintf
                  "rule %s: guard %s is true whenever it evaluates — it \
                   never filters"
                  r.rule_name (Guard.to_string g);
            })
  | `Unknown -> ()

let lint ?interp ?(overlaps = true) (prog : Program.t) =
  let interp =
    match interp with
    | Some i -> i
    | None -> Pypm_tensor.Attrs.structural ~sg:prog.sg
  in
  let rev = ref [] in
  let add d = rev := d :: !rev in
  (* per-pattern: guards, branch reachability, shadowing *)
  let compiled =
    List.map
      (fun (e : Program.entry) ->
        scan_guards add e.pname e.pattern;
        List.iter (scan_rule_guard add e.pname) e.rules;
        let cs = cbranches e.pattern in
        (match cs with
        | None -> ()
        | Some cs ->
            let n = List.length cs in
            let dead = List.filter (fun c -> c.unsat <> None) cs in
            if List.length dead = n then
              add
                {
                  severity = Wf.Error;
                  kind = Dead_pattern;
                  patterns = [ e.pname ];
                  witness = None;
                  explanation =
                    (match dead with
                    | { unsat = Some why; _ } :: _ ->
                        "no alternate can ever match: " ^ why
                    | _ -> "no alternate can ever match");
                }
            else begin
              if n > 1 then
                List.iter
                  (fun c ->
                    match c.unsat with
                    | Some why ->
                        add
                          {
                            severity = Wf.Warning;
                            kind = Dead_branch;
                            patterns = [ e.pname ];
                            witness = None;
                            explanation =
                              Printf.sprintf
                                "alternate #%d can never match: %s"
                                c.orig.b_index why;
                          }
                    | None -> ())
                  cs;
              (* shadowing under ordered alternates: a live arm implied by
                 an earlier live arm can never yield the first witness *)
              let seen = ref [] in
              List.iter
                (fun c ->
                  (if c.unsat = None then
                     match
                       List.find_opt (fun e' -> cimplies e' c) !seen
                     with
                     | Some earlier ->
                         let witness =
                           verified_witness ~sg:prog.sg ~interp
                             [ e.pattern ] [ c ]
                         in
                         add
                           {
                             severity = Wf.Warning;
                             kind = Shadowed_branch;
                             patterns = [ e.pname ];
                             witness;
                             explanation =
                               Printf.sprintf
                                 "alternate #%d is shadowed by alternate \
                                  #%d: every term it matches is already \
                                  matched earlier"
                                 c.orig.b_index earlier.orig.b_index;
                           }
                     | None -> ());
                  if c.unsat = None then seen := !seen @ [ c ])
                cs
            end);
        (e, cs))
      prog.entries
  in
  (* pairwise: an earlier pattern subsuming a later one makes the later
     one redundant under the pass's in-order trial; any other verified
     overlap is reported informationally *)
  let rec pairs = function
    | [] -> ()
    | (e1, Some cs1) :: rest ->
        List.iter
          (fun (e2, cs2) ->
            match cs2 with
            | None -> ()
            | Some cs2 when List.exists (fun c -> c.unsat = None) cs2 -> (
                (* a pattern with no live branch is already Dead_pattern;
                   vacuous subsumption of it would only add noise *)
                let e1n = (e1 : Program.entry).pname
                and e2n = (e2 : Program.entry).pname in
                match subsumes_c cs1 cs2 with
                | `Yes ->
                    let witness =
                      overlap_witness ~sg:prog.sg ~interp e1.pattern
                        e2.pattern
                    in
                    add
                      {
                        severity = Wf.Warning;
                        kind = Subsumed_pattern;
                        patterns = [ e1n; e2n ];
                        witness;
                        explanation =
                          Printf.sprintf
                            "%s matches every term %s matches; %s is tried \
                             first, making %s redundant"
                            e1n e2n e1n e2n;
                      }
                | `Unknown ->
                    if overlaps then
                      match
                        overlap_witness ~sg:prog.sg ~interp e1.pattern
                          e2.pattern
                      with
                      | Some t ->
                          add
                            {
                              severity = Wf.Warning;
                              kind = Overlapping_patterns;
                              patterns = [ e1n; e2n ];
                              witness = Some t;
                              explanation =
                                Printf.sprintf
                                  "%s and %s both match the witness term"
                                  e1n e2n;
                            }
                      | None -> ())
            | Some _ -> ())
          rest;
        pairs rest
    | (_, None) :: rest -> pairs rest
  in
  pairs compiled;
  List.rev !rev

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_diagnostic ppf d =
  let sev = match d.severity with Wf.Error -> "error" | Wf.Warning -> "warning" in
  Format.fprintf ppf "@[<hov 2>%s[%s]@ %s:@ %s" sev (kind_name d.kind)
    (String.concat ", " d.patterns)
    d.explanation;
  (match d.witness with
  | Some t -> Format.fprintf ppf "@ (witness: %a)" Term.pp t
  | None -> ());
  Format.fprintf ppf "@]"

let wf_lint prog =
  List.map
    (fun d ->
      {
        Wf.severity = d.severity;
        message = Format.asprintf "%a" pp_diagnostic d;
      })
    (lint prog)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ds =
  let b = Buffer.create 256 in
  Buffer.add_string b "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "{\"severity\":\"";
      Buffer.add_string b
        (match d.severity with Wf.Error -> "error" | Wf.Warning -> "warning");
      Buffer.add_string b "\",\"kind\":\"";
      Buffer.add_string b (kind_name d.kind);
      Buffer.add_string b "\",\"patterns\":[";
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_string b ",";
          Buffer.add_string b ("\"" ^ json_escape p ^ "\""))
        d.patterns;
      Buffer.add_string b "]";
      (match d.witness with
      | Some t ->
          Buffer.add_string b
            (",\"witness\":\"" ^ json_escape (Term.to_string t) ^ "\"")
      | None -> ());
      Buffer.add_string b
        (",\"explanation\":\"" ^ json_escape d.explanation ^ "\"}"))
    ds;
  Buffer.add_string b "]";
  Buffer.contents b
