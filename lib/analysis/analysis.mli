(** Static analysis of pattern libraries: the semantics put to work.

    The formal semantics makes pattern libraries objects one can reason
    about {e before} running them. This module decides, over the decidable
    fragment and fails open to "unknown" elsewhere:

    - {b subsumption} — pattern [P] matches every term [Q] matches, via
      {!Pypm_pattern.Skeleton} branch-string inclusion after canonicalizing
      variable names to their first binding position, plus a symbolic check
      on guards;
    - {b overlap} — a concrete witness term matched by both patterns,
      constructed by intersecting skeleton constraints and {e verified} by
      running the production matcher on both patterns (only verified
      witnesses are ever reported);
    - {b unreachability / shadowing} under ordered-alternate semantics —
      an alternate arm subsumed by an earlier arm of the same pattern, or
      intrinsically unsatisfiable (unbindable existential, contradictory
      guard), with a shadowing witness where one can be built;
    - {b guard satisfiability} for the attribute-comparison fragment, by
      interval reasoning over natural-valued attributes (tensor dims,
      ranks, structural size/depth), flagging guards that are vacuously
      false (the guarded pattern can never match) or vacuously true (the
      guard never filters).

    Soundness contract: every {e definite} verdict ([`Unsat], [`Valid],
    [`Yes], a [Dead_*] diagnostic, an overlap witness) is justified by the
    semantics; anything outside the analyzed fragment — [Mu], [Constr],
    free calls, wide alternates, opaque guards — yields no diagnostic
    rather than a wrong one. The [lint-soundness] fuzz property checks the
    contract against the enumeration oracle and the matcher. *)

open Pypm_term
open Pypm_pattern
open Pypm_engine

(** {1 Guard satisfiability} *)

(** Three-valued verdict on the evaluable domain of a guard: [`Unsat]
    means no substitution under any attribute interpretation consistent
    with the attribute ranges can make the guard true (evaluation failure
    also fails the match, so an [`Unsat] guarded pattern never matches);
    [`Valid] means the guard is true whenever it evaluates (it never
    filters beyond attribute definedness); [`Unknown] otherwise. *)
type verdict = [ `Unsat | `Valid | `Unknown ]

(** [guard_status g] by interval analysis. Attribute ranges: structural
    [size]/[depth] and declared [output_arity] are at least 1, [rank] is
    0..8 (dims are [dim0]..[dim7]), everything else is an arbitrary
    natural. *)
val guard_status : Guard.t -> verdict

(** {1 Pattern relations} *)

(** [subsumes p q] is [`Yes] when [p] matches every term [q] matches.
    [`Unknown] when the relation cannot be established (including
    whenever either pattern falls outside the decision fragment). *)
val subsumes : Pattern.t -> Pattern.t -> [ `Yes | `Unknown ]

(** [overlap_witness ~sg ~interp p q] builds a term matched by both
    patterns by intersecting their skeleton constraints, or [None]. A
    returned term has been verified with [Matcher.matches] against both
    patterns under [interp]; overlaps whose witnesses cannot be
    constructed (or verified under [interp]) are silently missed. *)
val overlap_witness :
  sg:Signature.t -> interp:Guard.interp -> Pattern.t -> Pattern.t ->
  Term.t option

(** {1 Linting} *)

type kind =
  | Dead_pattern  (** no satisfiable branch: the pattern can never match *)
  | Dead_branch  (** an alternate arm that is unsatisfiable on its own *)
  | Shadowed_branch
      (** an alternate arm subsumed by an earlier arm: under ordered
          alternates it can never produce the first witness *)
  | Subsumed_pattern
      (** an earlier pattern matches everything this one matches *)
  | Overlapping_patterns  (** two patterns share a verified witness term *)
  | Unsat_guard
      (** a guard that can never hold: the guarded subpattern never
          matches *)
  | Vacuous_guard  (** a guard that never filters (true whenever defined) *)

type diagnostic = {
  severity : Wf.severity;
  kind : kind;
  patterns : string list;  (** pattern names involved, program order *)
  witness : Term.t option;
      (** for shadowing/overlap: a verified term exhibiting the issue *)
  explanation : string;
}

(** [lint ?interp ?overlaps prog] analyzes the whole program: guard scan
    (every guard in every pattern and rule, including inside [Mu] bodies),
    per-pattern branch reachability, and pairwise subsumption/overlap over
    decision-fragment patterns. [interp] defaults to
    [Attrs.structural ~sg:prog.sg] and is used only to verify witnesses;
    [overlaps:false] (default [true]) skips the pairwise overlap report
    (subsumption and shadowing are still checked). Diagnostics come out in
    program order, errors before warnings within a pattern. *)
val lint :
  ?interp:Guard.interp -> ?overlaps:bool -> Program.t -> diagnostic list

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

(** [lint] rendered into the {!Pypm_pattern.Wf} diagnostic shape — the
    form [Program.make ~lint] accepts. Witnesses are printed into the
    message. *)
val wf_lint : Program.t -> Wf.diagnostic list

val kind_name : kind -> string
val pp_diagnostic : Format.formatter -> diagnostic -> unit

(** JSON array of diagnostics:
    [{"severity","kind","patterns","witness"?,"explanation"}]. Stable
    field order; the lint-smoke CI job checks this schema. *)
val to_json : diagnostic list -> string
