(** PyPM: pattern matching for AI compilers, and its formal core.

    Umbrella module re-exporting the public API. The layers, bottom-up:

    - {!Symbol}, {!Signature}, {!Term}, {!Subst}, {!Fsubst}: terms over an
      operator signature and the two substitution kinds (section 3.1);
    - {!Guard}, {!Pattern}, {!Wf}, {!Skeleton}: the CorePyPM pattern
      grammar (figure 15), guard arithmetic (section 3.2), well-formedness,
      and branch-string extraction for the pattern-set compiler;
    - {!Plan}: the pattern-set compiler — the whole library as one shared
      discrimination trie with prefix sharing and hoisted guards;
    - {!Analysis}: the static pattern-library linter — subsumption,
      overlap witnesses, shadowing under ordered-alternate semantics, and
      guard satisfiability over the attribute-interval fragment;
    - {!Declarative}, {!Derivation}, {!Machine}, {!Matcher}, {!Enumerate},
      {!Outcome}: the two semantics (figures 16-18), proof objects, the
      production matcher and the all-witness oracle;
    - {!Dtype}, {!Shape}, {!Ty}, {!Infer}, {!Attrs}: the tensor attribute
      domain;
    - {!Graph}, {!Term_view}: the DLCB-style computation-graph IR;
    - {!Resilience}: transaction journal re-export, per-pattern circuit
      breakers, and deterministic fault injection for the pass;
    - {!Rule}, {!Program}, {!Pass}, {!Eqsat}, {!Partition}: rewrite rules,
      the greedy rewrite pass (section 2.4), the cost-guided
      equality-saturation post-phase behind [Pass.run ~engine:Egraph],
      and directed graph partitioning (section 4.2);
    - {!Kernel}, {!Cost}, {!Exec}: the library-kernel registry and the GPU
      cost model / execution simulator;
    - {!Std_ops}, {!Corpus}: the tensor operator vocabulary and the paper's
      pattern corpus;
    - {!Ast}, {!Elaborate}, {!Dsl}: the frontend AST, its elaboration to
      the core calculus, and the OCaml combinator embedding;
    - {!Lexer}, {!Parser}, {!Surface}: the textual surface language;
    - {!Codec}, {!Protocol}: the portable serialized pattern-binary and
      graph formats, and the serve wire protocol;
    - {!Cache}, {!Pool}, {!Server}, {!Load}: the resident optimization
      service — content-addressed result cache, domain worker pool,
      Unix-socket server, and the load harness;
    - {!Rng}, {!Transformer}, {!Vision}, {!Zoo}: the synthetic benchmark
      model suites;
    - {!Srng}, {!Fuzz}: the splittable PRNG and the differential fuzzing
      driver cross-checking every engine against the declarative oracle. *)

module Symbol = Pypm_term.Symbol
module Signature = Pypm_term.Signature
module Term = Pypm_term.Term
module Subst = Pypm_term.Subst
module Fsubst = Pypm_term.Fsubst
module Guard = Pypm_pattern.Guard
module Pattern = Pypm_pattern.Pattern
module Skeleton = Pypm_pattern.Skeleton
module Wf = Pypm_pattern.Wf
module Plan = Pypm_plan.Plan
module Analysis = Pypm_analysis.Analysis
module Obs = Pypm_obs.Obs
module Outcome = Pypm_semantics.Outcome
module Declarative = Pypm_semantics.Declarative
module Derivation = Pypm_semantics.Derivation
module Machine = Pypm_semantics.Machine
module Matcher = Pypm_semantics.Matcher
module Enumerate = Pypm_semantics.Enumerate
module Dtype = Pypm_tensor.Dtype
module Shape = Pypm_tensor.Shape
module Ty = Pypm_tensor.Ty
module Infer = Pypm_tensor.Infer
module Attrs = Pypm_tensor.Attrs
module Graph = Pypm_graph.Graph
module Term_view = Pypm_graph.Term_view
module Dot = Pypm_graph.Dot
module Query = Pypm_query.Query
module Egraph = Pypm_egraph.Egraph
module Ematch = Pypm_egraph.Ematch
module Saturate = Pypm_egraph.Saturate
module Resilience = Pypm_resilience.Resilience
module Rule = Pypm_engine.Rule
module Program = Pypm_engine.Program
module Pass = Pypm_engine.Pass
module Eqsat = Pypm_engine.Eqsat
module Term_rewrite = Pypm_engine.Term_rewrite
module Partition = Pypm_engine.Partition
module Kernel = Pypm_kernels.Kernel
module Cost = Pypm_kernels.Cost
module Exec = Pypm_kernels.Exec
module Std_ops = Pypm_patterns.Std_ops
module Corpus = Pypm_patterns.Corpus
module Ast = Pypm_dsl.Ast
module Elaborate = Pypm_dsl.Elaborate
module Dsl = Pypm_dsl.Dsl
module Lexer = Pypm_surface.Lexer
module Parser = Pypm_surface.Parser
module Surface = Pypm_surface.Surface
module Codec = Pypm_serialize.Codec
module Protocol = Pypm_serialize.Protocol
module Cache = Pypm_serve.Cache
module Pool = Pypm_parallel.Pool
module Team = Pypm_parallel.Team
module Server = Pypm_serve.Server
module Load = Pypm_serve.Load
module Chaos = Pypm_serve.Chaos
module Rng = Pypm_models.Rng
module Transformer = Pypm_models.Transformer
module Vision = Pypm_models.Vision
module Multimodal = Pypm_models.Multimodal
module Zoo = Pypm_models.Zoo
module Srng = Pypm_fuzz.Srng
module Fuzz = Pypm_fuzz.Fuzz

(** The stable embedding surface (parse → lint → prepare → run →
    stats_json) — start here when embedding the optimizer. *)
module Api = Pypm_api
