(* Destructive vs nondestructive rewriting (paper, sections 1 and 5): PyPM
   rewrites destructively and greedily — the first rule that fires wins and
   the matched subgraph is gone. Equality-saturation engines in the egg
   family instead *add* equalities and pick the best version at the end.
   This example runs both on the classic ordering trap.

     dune exec examples/equality_saturation.exe *)

open Pypm
module P = Pattern

(* [Saturate.rw] validates its rewrite and returns a [result]; these
   rewrites are statically fine, so failure here is a programming error. *)
let rw_exn ~name lhs rhs =
  match Saturate.rw ~name lhs rhs with Ok r -> r | Error e -> failwith e

let () =
  (* a tiny signature: f/2, g/1, constants *)
  let sg = Signature.create () in
  ignore (Signature.declare sg ~arity:2 "f");
  ignore (Signature.declare sg ~arity:1 ~op_class:"unary_pointwise" "g");
  ignore (Signature.declare sg ~arity:0 "a");
  ignore (Signature.declare sg ~arity:0 "b");
  let a = Term.const "a" and b = Term.const "b" in
  let t = Term.app "g" [ Term.app "f" [ a; b ] ] in
  Format.printf "input term: %a@.@." Term.pp t;

  (* two rules with an ordering trap:
       R1: f(x, b) -> g(x)       (fires inside, destroys R2's redex)
       R2: g(f(x, b)) -> x       (the better, combined simplification) *)
  Format.printf "R1: f(x, b) => g(x)@.R2: g(f(x, b)) => x@.@.";

  (* destructive greedy (the PyPM pass): visiting nodes bottom-up, R1
     matches at the inner f-node first and rewrites; the g(f(..)) shape is
     gone before R2 is ever tried at the root *)
  let greedy =
    (* simulate on terms: innermost-first single-pass rewriting *)
    let rec rewrite t =
      let t = Term.app (Term.head t) (List.map rewrite (Term.args t)) in
      match (Term.head t, Term.args t) with
      | "f", [ x; cb ] when Term.equal cb b -> Term.app "g" [ x ]
      | "g", [ inner ] when Term.head inner = "f" -> (
          match Term.args inner with
          | [ x; cb ] when Term.equal cb b -> x
          | _ -> t)
      | _ -> t
    in
    rewrite t
  in
  Format.printf "destructive greedy result: %a (size %d)@." Term.pp greedy
    (Term.size greedy);

  (* nondestructive: saturate an e-graph with both rules and extract *)
  let rules =
    [
      rw_exn ~name:"R1"
        (P.app "f" [ P.var "x"; P.const "b" ])
        (Saturate.Tapp ("g", [ Saturate.Tvar "x" ]));
      rw_exn ~name:"R2"
        (P.app "g" [ P.app "f" [ P.var "x"; P.const "b" ] ])
        (Saturate.Tvar "x");
    ]
  in
  let best, stats = Saturate.simplify ~rules t in
  Format.printf "equality saturation result:  %a (size %d)@." Term.pp best
    (Term.size best);
  Format.printf "  %a@.@." Saturate.pp_stats stats;

  (* why PyPM still rewrites destructively: its rules replace subgraphs by
     *opaque fused kernels* whose value equality is an article of faith,
     not a syntactic equation — and compile time must stay bounded. The
     trade is real and this pair of engines lets you measure it. *)
  let rec tower n = if n = 0 then a else Term.app "g" [ tower (n - 1) ] in
  let chain = tower 9 in
  let gg_rule =
    rw_exn ~name:"gg"
      (P.app "g" [ P.app "g" [ P.var "x" ] ])
      (Saturate.Tvar "x")
  in
  let best, stats = Saturate.simplify ~rules:[ gg_rule ] chain in
  Format.printf "g-tower of 9 with g(g(x)) => x: %a, %a@." Term.pp best
    Saturate.pp_stats stats
