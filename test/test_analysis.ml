(* The static pattern-library linter (lib/analysis): guard satisfiability
   over the attribute-interval fragment, subsumption and overlap witnesses,
   shadowing under ordered alternates, lint wiring (Program.make ~lint,
   plan pruning, Pass.Config) and the Pypm_api facade. *)

open Pypm_term
open Pypm_pattern
open Pypm_semantics
open Pypm_engine
module F = Pypm_testutil.Fixtures
module P = Pattern
module A = Pypm.Analysis
module Plan = Pypm.Plan
module Std_ops = Pypm.Std_ops
module Corpus = Pypm.Corpus
module Transformer = Pypm.Transformer
module Graph = Pypm.Graph

let checki = Alcotest.(check int)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let sg = F.sg
let interp = F.interp
let matched p t = Outcome.is_matched (Matcher.matches ~interp p t)

(* ------------------------------------------------------------------ *)
(* Guard satisfiability                                                *)
(* ------------------------------------------------------------------ *)

let test_guard_status () =
  let open Guard in
  let unsat g = A.guard_status g = `Unsat in
  let valid g = A.guard_status g = `Valid in
  let unknown g = A.guard_status g = `Unknown in
  checkb "size < 1 unsat" true (unsat (Lt (Var_attr ("x", "size"), Const 1)));
  checkb "0 <= rank valid" true (valid (Le (Const 0, Var_attr ("x", "rank"))));
  checkb "rank < 9 valid" true (valid (Lt (Var_attr ("x", "rank"), Const 9)));
  checkb "size = 3 unknown" true (unknown (Eq (Var_attr ("x", "size"), Const 3)));
  checkb "x.size = x.size valid" true
    (valid (Eq (Var_attr ("x", "size"), Var_attr ("x", "size"))));
  checkb "conjunction with unsat leg unsat" true
    (unsat
       (And
          ( Le (Const 0, Var_attr ("x", "size")),
            Lt (Var_attr ("y", "depth"), Const 1) )));
  checkb "disjunction with valid leg valid" true
    (valid
       (Or
          ( Le (Const 1, Var_attr ("x", "size")),
            Eq (Var_attr ("x", "size"), Const 3) )));
  (* never-true comparisons against shifted expressions *)
  checkb "size < size unsat" true
    (unsat (Lt (Var_attr ("x", "size"), Var_attr ("x", "size"))))

(* ------------------------------------------------------------------ *)
(* Subsumption                                                         *)
(* ------------------------------------------------------------------ *)

let p_wide = P.app "f" [ P.var "x"; P.var "y" ]
let p_narrow = P.app "f" [ P.app "g" [ P.var "z" ]; P.const "a" ]
let p_xx = P.app "f" [ P.var "x"; P.var "x" ]

let test_subsumes_linear () =
  checkb "f(x,y) subsumes f(g(z),a)" true (A.subsumes p_wide p_narrow = `Yes);
  checkb "not the converse" true (A.subsumes p_narrow p_wide = `Unknown);
  checkb "reflexive" true (A.subsumes p_wide p_wide = `Yes)

let test_subsumes_nonlinear () =
  checkb "f(x,x) does not subsume f(x,y)" true (A.subsumes p_xx p_wide = `Unknown);
  checkb "f(x,y) subsumes f(x,x)" true (A.subsumes p_wide p_xx = `Yes);
  checkb "f(x,x) subsumes alpha-variant f(w,w)" true
    (A.subsumes p_xx (P.app "f" [ P.var "w"; P.var "w" ]) = `Yes)

(* a [`Valid] guard is only "true when it evaluates": a guard over a
   variable the pattern never binds can never evaluate, so the guarded
   pattern matches nothing and must not be claimed to subsume anything
   (found by the lint-soundness fuzz property) *)
let test_subsumes_guard_evaluability () =
  let guarded_unbound =
    P.guarded (P.var "ey") [ Guard.Le (Guard.Const 1, Guard.Var_attr ("x", "depth")) ]
  in
  checkb "unevaluable-guard pattern subsumes nothing" true
    (A.subsumes guarded_unbound (P.var "z") = `Unknown);
  (* with the guard over the bound variable the claim is sound again *)
  let guarded_bound =
    P.guarded (P.var "ey") [ Guard.Le (Guard.Const 1, Guard.Var_attr ("ey", "depth")) ]
  in
  checkb "evaluable valid guard discharges" true
    (A.subsumes guarded_bound (P.var "z") = `Yes)

let test_subsumption_extensional () =
  (* spot-check the semantic claim on a probe set *)
  let probes =
    [
      F.a; F.b; F.c; F.g1 F.a;
      F.f2 F.a F.b; F.f2 (F.g1 F.a) (Term.const "a");
      F.f2 (F.g1 (F.g1 F.b)) F.c; F.h3 F.a F.b F.c;
      F.f2 (F.g1 F.c) F.c; F.f2 F.c F.c;
    ]
  in
  List.iter
    (fun (p, q) ->
      if A.subsumes p q = `Yes then
        List.iter
          (fun t ->
            if matched q t then
              checkb
                (Printf.sprintf "%s subsumes %s on %s" (P.to_string p)
                   (P.to_string q) (Term.to_string t))
                true (matched p t))
          probes)
    [
      (p_wide, p_narrow); (p_wide, p_xx); (P.var "v", p_wide);
      (P.app "f" [ P.var "x"; P.const "a" ], P.app "f" [ P.const "b"; P.const "a" ]);
    ]

(* ------------------------------------------------------------------ *)
(* Overlap witnesses                                                   *)
(* ------------------------------------------------------------------ *)

let test_overlap_witness () =
  let p1 = P.app "f" [ P.var "x"; P.const "a" ] in
  let p2 = P.app "f" [ P.app "g" [ P.var "y" ]; P.var "z" ] in
  (match A.overlap_witness ~sg ~interp p1 p2 with
  | Some t ->
      checkb "witness matches p1" true (matched p1 t);
      checkb "witness matches p2" true (matched p2 t)
  | None -> Alcotest.fail "expected an overlap witness");
  checkb "head conflict: no overlap" true
    (A.overlap_witness ~sg ~interp (P.app "g" [ P.var "x" ]) p_wide = None)

let test_overlap_nonlinear () =
  (* f(x,x) vs f(g(a), y): congruence forces the witness f(g(a), g(a)) *)
  let q = P.app "f" [ P.app "g" [ P.const "a" ]; P.var "y" ] in
  match A.overlap_witness ~sg ~interp p_xx q with
  | Some t ->
      checkb "matches f(x,x)" true (matched p_xx t);
      checkb "matches f(g(a),y)" true (matched q t)
  | None -> Alcotest.fail "expected a nonlinear overlap witness"

(* ------------------------------------------------------------------ *)
(* Lint: the known-bad model library                                   *)
(* ------------------------------------------------------------------ *)

(* One program exhibiting all three headline defects: an ordered alternate
   whose second arm is shadowed by the first, a pattern subsumed by an
   earlier one, and an unsatisfiable guard. *)
let bad_program () =
  let shadowed =
    P.alt p_wide (P.app "f" [ P.app "g" [ P.var "z" ]; P.var "w" ])
  in
  let unsat_g =
    P.guarded (P.app "g" [ P.var "x" ])
      [ Guard.Lt (Guard.Var_attr ("x", "size"), Guard.Const 1) ]
  in
  Program.make ~sg
    [
      { pname = "P_wide"; pattern = p_wide; rules = [] };
      { pname = "P_shadow"; pattern = shadowed; rules = [] };
      { pname = "P_narrow"; pattern = p_narrow; rules = [] };
      { pname = "P_unsat"; pattern = unsat_g; rules = [] };
    ]

let find_kind kind ds =
  List.filter (fun (d : A.diagnostic) -> d.A.kind = kind) ds

let test_lint_bad_library () =
  let ds = A.lint (bad_program ()) in
  (* all three defects reported *)
  (match find_kind A.Shadowed_branch ds with
  | d :: _ ->
      checkb "shadowed names P_shadow" true (List.mem "P_shadow" d.A.patterns);
      (match d.A.witness with
      | Some w ->
          checkb "shadow witness matches the pattern" true
            (matched (P.alt p_wide (P.app "f" [ P.app "g" [ P.var "z" ]; P.var "w" ])) w)
      | None -> Alcotest.fail "shadowed-branch witness missing")
  | [] -> Alcotest.fail "no shadowed-branch diagnostic");
  (match find_kind A.Subsumed_pattern ds with
  | subs ->
      checkb "P_narrow reported subsumed by P_wide" true
        (List.exists
           (fun (d : A.diagnostic) -> d.A.patterns = [ "P_wide"; "P_narrow" ])
           subs);
      List.iter
        (fun (d : A.diagnostic) ->
          match d.A.witness with
          | Some w ->
              List.iter
                (fun name ->
                  let e = Option.get (Program.entry (bad_program ()) name) in
                  checkb
                    (Printf.sprintf "subsumption witness matches %s" name)
                    true
                    (matched e.Program.pattern w))
                d.A.patterns
          | None -> Alcotest.fail "subsumption witness missing")
        subs);
  (match find_kind A.Unsat_guard ds with
  | d :: _ -> checkb "unsat guard names P_unsat" true (d.A.patterns = [ "P_unsat" ])
  | [] -> Alcotest.fail "no unsat-guard diagnostic");
  (match find_kind A.Dead_pattern ds with
  | d :: _ ->
      checkb "dead pattern is an error" true (d.A.severity = Wf.Error);
      checkb "dead pattern is P_unsat" true (d.A.patterns = [ "P_unsat" ])
  | [] -> Alcotest.fail "no dead-pattern diagnostic");
  (* severity partition *)
  checkb "errors nonempty" true (A.errors ds <> []);
  checkb "warnings nonempty" true (A.warnings ds <> [])

let test_lint_json () =
  let ds = A.lint (bad_program ()) in
  let json = A.to_json ds in
  checkb "json mentions every kind name" true
    (List.for_all
       (fun k -> contains json ("\"" ^ k ^ "\""))
       [ "shadowed-branch"; "subsumed-pattern"; "unsat-guard"; "dead-pattern" ])

let test_lint_dead_branch_and_vacuous () =
  let dead_arm =
    P.alt
      (P.guarded (P.app "g" [ P.var "x" ])
         [ Guard.Lt (Guard.Var_attr ("x", "depth"), Guard.Const 1) ])
      (P.app "g" [ P.var "x" ])
  in
  let vacuous =
    P.guarded (P.app "g" [ P.var "x" ])
      [ Guard.Le (Guard.Const 1, Guard.Var_attr ("x", "size")) ]
  in
  let prog =
    Program.make ~sg
      [
        { pname = "P_deadarm"; pattern = dead_arm; rules = [] };
        { pname = "P_vac"; pattern = vacuous; rules = [] };
      ]
  in
  let ds = A.lint prog in
  checkb "dead arm reported, pattern still live" true
    (find_kind A.Dead_branch ds <> [] && find_kind A.Dead_pattern ds = []);
  checkb "vacuous evaluable guard reported" true
    (List.exists
       (fun (d : A.diagnostic) -> d.A.patterns = [ "P_vac" ])
       (find_kind A.Vacuous_guard ds))

(* a guard over a variable the branch never binds can never evaluate:
   the branch is dead, not vacuously true *)
let test_lint_unbound_guard_var () =
  let p =
    P.guarded (P.var "ey")
      [ Guard.Le (Guard.Const 1, Guard.Var_attr ("x", "depth")) ]
  in
  let prog = Program.make ~sg [ { pname = "P"; pattern = p; rules = [] } ] in
  let ds = A.lint prog in
  checkb "flagged dead" true (find_kind A.Dead_pattern ds <> []);
  (* and indeed nothing matches it *)
  List.iter
    (fun t -> checkb "matches nothing" false (matched p t))
    [ F.a; F.g1 F.b; F.f2 F.a F.b ]

(* ------------------------------------------------------------------ *)
(* Lint: corpus zoos                                                   *)
(* ------------------------------------------------------------------ *)

let test_lint_corpus_zoos () =
  let env = Std_ops.make () in
  List.iter
    (fun (name, prog) ->
      let ds = A.lint prog in
      checki (name ^ " has no error-severity findings") 0
        (List.length (A.errors ds)))
    [
      ("fmha", Corpus.fmha_program env.Std_ops.sg);
      ("epilog", Corpus.epilog_program env.Std_ops.sg);
      ("both", Corpus.both_program env.Std_ops.sg);
      ("partition", Corpus.partition_program env.Std_ops.sg);
      ("cleanup", Corpus.cleanup_program env.Std_ops.sg);
      ("full", Corpus.full_program env.Std_ops.sg);
    ];
  (* the one known warning: MulOne / MulZero share witnesses like
     Mul(x, lit_1) with x = lit_0 — pinned so new findings surface *)
  let env = Std_ops.make () in
  let ds = A.lint (Corpus.full_program env.Std_ops.sg) in
  checki "full corpus: exactly one finding" 1 (List.length ds);
  match ds with
  | [ d ] ->
      checkb "it is the MulOne/MulZero overlap" true
        (d.A.kind = A.Overlapping_patterns
        && List.sort compare d.A.patterns = [ "MulOne"; "MulZero" ])
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Admission wiring                                                    *)
(* ------------------------------------------------------------------ *)

let test_program_make_lint () =
  let dead =
    P.guarded (P.app "g" [ P.var "x" ])
      [ Guard.Lt (Guard.Var_attr ("x", "size"), Guard.Const 1) ]
  in
  (* errors reject at construction *)
  (try
     ignore
       (Program.make ~lint:A.wf_lint ~sg
          [ { pname = "P"; pattern = dead; rules = [] } ]);
     Alcotest.fail "lint should have rejected the dead pattern"
   with Invalid_argument msg ->
     checkb "message names the defect" true (contains msg "never"));
  (* warnings are tolerated *)
  let p =
    Program.make ~lint:A.wf_lint ~sg
      [
        { pname = "P_wide"; pattern = p_wide; rules = [] };
        { pname = "P_narrow"; pattern = p_narrow; rules = [] };
      ]
  in
  checki "warned program still constructed" 2 (List.length p.Program.entries)

(* ------------------------------------------------------------------ *)
(* Plan pruning                                                        *)
(* ------------------------------------------------------------------ *)

let test_plan_pruning_identical () =
  (* overlapping alternates whose expansion repeats a branch string —
     f(x, a|b) | f(x, a) expands to f(x,a); f(x,b); f(x,a) — the duplicate
     can never be the lowest-index success, so pruning drops it and every
     match result is unchanged. (Branch subsumption at this layer is
     literal: arms that differ only in variable names are the analysis
     layer's shadowing lint, not the plan compiler's.) *)
  let entries =
    [
      ( "P",
        P.alt
          (P.app "f" [ P.var "x"; P.alt (P.const "a") (P.const "b") ])
          (P.app "f" [ P.var "x"; P.const "a" ]) );
      ("Q", P.app "f" [ P.var "x"; P.const "a" ]);
    ]
  in
  let pruned = Plan.compile entries in
  let unpruned = Plan.compile ~prune_subsumed:false entries in
  checkb "something was pruned" true (Plan.pruned pruned = [ ("P", 1) ]);
  checkb "nothing pruned when disabled" true (Plan.pruned unpruned = []);
  checkb "pruned trie is smaller" true
    (Plan.branch_count pruned < Plan.branch_count unpruned);
  let probes =
    [
      F.f2 F.a F.b; F.f2 (F.g1 F.a) (Term.const "a"); F.f2 (F.g1 F.b) F.c;
      F.g1 F.a; F.a; F.f2 (F.f2 F.a F.b) (Term.const "a");
      F.h3 F.a F.b F.c; F.f2 (F.g1 (F.g1 F.c)) (F.g1 F.a);
    ]
  in
  List.iter
    (fun t ->
      let show rs =
        String.concat "; "
          (List.map
             (fun (name, (theta, phi)) ->
               Printf.sprintf "%s: %s %s" name (Subst.to_string theta)
                 (Fsubst.to_string phi))
             rs)
      in
      checks
        (Printf.sprintf "results identical on %s" (Term.to_string t))
        (show (Plan.match_node unpruned ~interp t))
        (show (Plan.match_node pruned ~interp t)))
    probes

let test_pass_reports_pruning () =
  (* [plan_pruned] mixes trie-walk rejections with statically dropped
     branches; isolate the static part by comparing a pattern against the
     same pattern with a literally duplicate alternate arm *)
  let build () =
    let env = Std_ops.make () in
    let cfg = Transformer.config "t" ~layers:2 ~hidden:64 ~seq:16 in
    (env, Transformer.build env cfg)
  in
  let add = P.app "Add" [ P.var "x"; P.var "y" ] in
  let run pattern =
    let env, g = build () in
    let prog =
      Program.make ~sg:env.Std_ops.sg
        [ { pname = "AddAny"; pattern; rules = [] } ]
    in
    let stats =
      Pypm.Pass.match_only_cfg
        ~config:
          {
            Pypm.Pass.Config.default with
            Pypm.Pass.Config.engine = Some Pypm.Pass.Plan;
          }
        prog g
    in
    List.find
      (fun (p : Pypm.Pass.pattern_stats) -> p.Pypm.Pass.ps_name = "AddAny")
      stats.Pypm.Pass.per_pattern
  in
  let single = run add and dup = run (P.alt add add) in
  checki "duplicate arm pruned, trie otherwise identical"
    (single.Pypm.Pass.plan_pruned + 1)
    dup.Pypm.Pass.plan_pruned;
  checki "same matches" single.Pypm.Pass.matches dup.Pypm.Pass.matches

(* ------------------------------------------------------------------ *)
(* Pass.Config                                                         *)
(* ------------------------------------------------------------------ *)

let test_config_equivalence () =
  (* the labelled shims and the config record are the same pass *)
  let build () =
    let env = Std_ops.make () in
    let cfg = Transformer.config "t" ~layers:2 ~hidden:64 ~seq:16 in
    (env, Transformer.build env cfg)
  in
  let env1, g1 = build () in
  let s1 = Pypm.Pass.run ~engine:Pypm.Pass.Plan (Corpus.both_program env1.Std_ops.sg) g1 in
  let env2, g2 = build () in
  let config =
    Pypm.Pass.Config.override ~engine:Pypm.Pass.Plan Pypm.Pass.Config.default
  in
  let s2 = Pypm.Pass.run_cfg ~config (Corpus.both_program env2.Std_ops.sg) g2 in
  checki "same rewrites" s1.Pypm.Pass.total_rewrites s2.Pypm.Pass.total_rewrites;
  checks "same final graph" (Pypm.Fuzz.fingerprint g1) (Pypm.Fuzz.fingerprint g2)

let test_stats_json_config_block () =
  let env = Std_ops.make () in
  let cfg = Transformer.config "t" ~layers:1 ~hidden:64 ~seq:16 in
  let g = Transformer.build env cfg in
  let config =
    Pypm.Pass.Config.override ~engine:Pypm.Pass.Plan ~fuel:12345
      Pypm.Pass.Config.default
  in
  let stats = Pypm.Pass.run_cfg ~config (Corpus.both_program env.Std_ops.sg) g in
  let json = Pypm.Pass.stats_json stats in
  let has s = contains json s in
  checkb "config block present" true (has "\"config\"");
  checkb "requested engine recorded" true (has "\"engine_requested\":\"plan\"");
  checkb "fuel recorded" true (has "\"fuel\":12345")

(* ------------------------------------------------------------------ *)
(* Pypm_api facade                                                     *)
(* ------------------------------------------------------------------ *)

let test_api_pipeline () =
  let env = Pypm.Api.env () in
  let src =
    "pattern DoubleRelu(x) { return Relu(Relu(x)); }\n\
     rule fuse for DoubleRelu(x) { return Relu(x); }\n"
  in
  match Pypm.Api.parse ~sg:env.Pypm_patterns.Std_ops.sg src with
  | Error e -> Alcotest.fail ("facade parse failed: " ^ e)
  | Ok prog ->
      checki "facade lint clean" 0 (List.length (Pypm.Api.lint prog));
      let cfg = Transformer.config "t" ~layers:1 ~hidden:64 ~seq:16 in
      let g = Transformer.build env cfg in
      let config =
        { Pypm.Api.Config.default with Pypm.Api.Config.engine = Some Pypm.Pass.Plan }
      in
      let prepared = Pypm.Api.prepare ~config prog in
      let stats = Pypm.Api.run ~config prepared g in
      checkb "facade stats json has config" true
        (contains (Pypm.Api.stats_json stats) "\"config\"")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ("guards", [ Alcotest.test_case "interval verdicts" `Quick test_guard_status ]);
      ( "subsumption",
        [
          Alcotest.test_case "linear" `Quick test_subsumes_linear;
          Alcotest.test_case "nonlinear" `Quick test_subsumes_nonlinear;
          Alcotest.test_case "guard evaluability" `Quick
            test_subsumes_guard_evaluability;
          Alcotest.test_case "extensional on probes" `Quick
            test_subsumption_extensional;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "witness verified" `Quick test_overlap_witness;
          Alcotest.test_case "nonlinear congruence" `Quick test_overlap_nonlinear;
        ] );
      ( "lint",
        [
          Alcotest.test_case "known-bad library" `Quick test_lint_bad_library;
          Alcotest.test_case "json schema" `Quick test_lint_json;
          Alcotest.test_case "dead arm / vacuous guard" `Quick
            test_lint_dead_branch_and_vacuous;
          Alcotest.test_case "unbound guard variable" `Quick
            test_lint_unbound_guard_var;
          Alcotest.test_case "corpus zoos stay clean" `Quick
            test_lint_corpus_zoos;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "Program.make ~lint admission" `Quick
            test_program_make_lint;
          Alcotest.test_case "plan pruning: identical results" `Quick
            test_plan_pruning_identical;
          Alcotest.test_case "pass reports pruned branches" `Quick
            test_pass_reports_pruning;
        ] );
      ( "config",
        [
          Alcotest.test_case "record = labelled shims" `Quick
            test_config_equivalence;
          Alcotest.test_case "stats json config block" `Quick
            test_stats_json_config_block;
        ] );
      ("api", [ Alcotest.test_case "facade pipeline" `Quick test_api_pipeline ]);
    ]
