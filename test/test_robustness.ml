(* Failure-injection and robustness tests: pathological patterns, broken
   rules, bad inputs — the engine must fail loudly and boundedly, never
   hang or corrupt the graph. *)

open Pypm
module P = Pattern

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let f32 shape = Ty.make Dtype.F32 shape

let fresh () =
  let e = Std_ops.make () in
  (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())

(* ------------------------------------------------------------------ *)
(* Pathological matching stays bounded                                 *)
(* ------------------------------------------------------------------ *)

(* exponential backtracking: n nested alternates of conflicting nonlinear
   bindings; the matcher must hit the fuel bound, not hang *)
let test_exponential_backtracking_bounded () =
  let sg = Signature.create () in
  ignore (Signature.declare sg ~arity:2 "f");
  ignore (Signature.declare sg ~arity:0 "a");
  ignore (Signature.declare sg ~arity:0 "b");
  let interp = Attrs.structural ~sg in
  (* pattern: f(x1||y1, f(x2||y2, ... f(xn||yn, z))) over a right comb of
     distinct constants with a final conflicting constraint *)
  let n = 18 in
  let rec pat i =
    if i = 0 then P.var "conflict"
    else P.app "f" [ P.alt (P.var "w") (P.var "w'"); pat (i - 1) ]
  in
  (* conflict: the final variable must equal both a and b *)
  let p = P.app "f" [ pat n; P.app "f" [ P.var "conflict"; P.var "conflict" ] ] in
  let rec comb i =
    if i = 0 then Term.const "a" else Term.app "f" [ Term.const "a"; comb (i - 1) ]
  in
  let t = Term.app "f" [ comb n; Term.app "f" [ Term.const "a"; Term.const "b" ] ] in
  match Matcher.matches ~interp ~fuel:5_000 p t with
  | Outcome.Out_of_fuel | Outcome.No_match -> ()
  | o -> Alcotest.failf "expected bounded failure, got %s" (Outcome.to_string o)

let test_deep_recursion_bounded () =
  (* left-recursive mu with a base case that never matches *)
  let sg = Signature.create () in
  ignore (Signature.declare sg ~arity:1 "g");
  ignore (Signature.declare sg ~arity:0 "a");
  let interp = Attrs.structural ~sg in
  let p =
    P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ]
      (P.alt (P.call "P" [ "x" ]) (P.app "g" [ P.call "P" [ "x" ] ]))
  in
  (match Matcher.matches ~interp ~fuel:2_000 p (Term.const "a") with
  | Outcome.Out_of_fuel -> ()
  | o -> Alcotest.failf "matcher: expected out-of-fuel, got %s" (Outcome.to_string o));
  match Machine.run ~interp ~fuel:2_000 p (Term.const "a") with
  | Outcome.Out_of_fuel -> ()
  | o -> Alcotest.failf "machine: expected out-of-fuel, got %s" (Outcome.to_string o)

(* ------------------------------------------------------------------ *)
(* Broken rules fail loudly, and the graph survives                    *)
(* ------------------------------------------------------------------ *)

let bad_program env =
  let bad =
    {
      Program.pname = "Bad";
      pattern = P.app Std_ops.relu [ P.var "x" ];
      rules =
        [ Rule.make ~name:"bad" ~pattern:"Bad" (Rule.Rvar "never_bound") ];
    }
  in
  Program.make ~sg:env.Std_ops.sg [ bad ]

(* A rule whose template mentions a variable the pattern never binds: under
   the default policy the error is contained — recorded in [stats.errors],
   the pattern quarantined, the graph intact — and [run] does not raise. *)
let test_rule_with_unbound_var_is_contained () =
  let env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  (* three matching nodes, so one traversal strikes the breaker three
     times: quarantine at threshold 2 trips mid-traversal *)
  let r1 = Graph.add g Std_ops.relu [ x ] in
  let r2 = Graph.add g Std_ops.relu [ r1 ] in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ r2 ] ];
  let stats = Pass.run ~quarantine_after:2 (bad_program env) g in
  checki "no rewrites fired" 0 stats.Pass.total_rewrites;
  checkb "errors recorded" true (stats.Pass.errors <> []);
  (match List.hd stats.Pass.errors with
  | Pass.Rule_failed { pattern; rule; reason } ->
      Alcotest.(check string) "names the pattern" "Bad" pattern;
      Alcotest.(check string) "names the rule" "bad" rule;
      checkb "names the variable" true (String.length reason > 0)
  | e -> Alcotest.failf "unexpected error: %s" (Pass.error_message e));
  checkb "pattern quarantined" true
    (match Pass.find_pattern_stats stats "Bad" with
    | Some ps -> ps.Pass.quarantined
    | None -> false);
  checkb "every failed firing rolled back" true (stats.Pass.rolled_back > 0);
  checkb "not fatal by default" true (stats.Pass.fatal = None);
  (* the failed instantiations must not have broken the graph *)
  Alcotest.(check (list string)) "graph still valid" [] (Graph.validate g)

(* Under [`Fail] (the CLI's --strict) the same program stops the pass at
   the first error, surfaced through [run_result]. *)
let test_rule_with_unbound_var_strict () =
  let env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ x ] ];
  match Pass.run_result (bad_program env) g with
  | Ok _ -> Alcotest.fail "strict mode accepted an unbound rule variable"
  | Error (e, stats) ->
      (match e with
      | Pass.Rule_failed { rule; _ } ->
          Alcotest.(check string) "names the rule" "bad" rule
      | e -> Alcotest.failf "unexpected error: %s" (Pass.error_message e));
      checkb "stats report the fatal error" true (stats.Pass.fatal = Some e);
      Alcotest.(check (list string)) "graph still valid" [] (Graph.validate g)

let test_pass_on_empty_program_is_identity () =
  let env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ x ] ];
  let before = Graph.live_count g in
  let stats = Pass.run (Program.make ~sg:env.Std_ops.sg []) g in
  checki "no rewrites" 0 stats.Pass.total_rewrites;
  checki "untouched" before (Graph.live_count g);
  checkb "fixpoint" true stats.Pass.reached_fixpoint

let test_pass_on_empty_graph () =
  let env, g = fresh () in
  Graph.set_outputs g [];
  let stats = Pass.run (Corpus.both_program env.Std_ops.sg) g in
  checki "nothing visited" 0 stats.Pass.nodes_visited;
  checkb "fixpoint" true stats.Pass.reached_fixpoint

(* ------------------------------------------------------------------ *)
(* Loader robustness                                                   *)
(* ------------------------------------------------------------------ *)

let test_missing_file_is_an_error () =
  let sg = Signature.create () in
  match Surface.load_file ~sg "/nonexistent/patterns.pypm" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let test_missing_include_is_an_error () =
  let path = Filename.temp_file "pypm_badinc" ".pypm" in
  let oc = open_out path in
  output_string oc "include \"does_not_exist.pypm\";\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sg = Signature.create () in
      match Surface.load_file ~sg path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "missing include accepted")

(* fuzz: the surface parser is total over arbitrary bytes (errors, never
   exceptions other than its own) *)
let prop_parser_total =
  Pypm_testutil.Fixtures.qtest ~count:500 "surface parsing is total"
    QCheck2.Gen.(string_size (int_range 0 80))
    (fun s -> Printf.sprintf "%S" s)
    (fun src ->
      match Surface.parse src with Ok _ -> true | Error _ -> true)

(* fuzz: pexp parsing is total as well *)
let prop_pexp_total =
  Pypm_testutil.Fixtures.qtest ~count:500 "pexp parsing is total"
    QCheck2.Gen.(string_size (int_range 0 40))
    (fun s -> Printf.sprintf "%S" s)
    (fun src ->
      match Parser.pexp src with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true)

let () =
  Alcotest.run "robustness"
    [
      ( "bounded",
        [
          Alcotest.test_case "exponential backtracking" `Quick
            test_exponential_backtracking_bounded;
          Alcotest.test_case "deep recursion" `Quick test_deep_recursion_bounded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "unbound rule variable" `Quick
            test_rule_with_unbound_var_is_contained;
          Alcotest.test_case "unbound rule variable (strict)" `Quick
            test_rule_with_unbound_var_strict;
          Alcotest.test_case "empty program" `Quick
            test_pass_on_empty_program_is_identity;
          Alcotest.test_case "empty graph" `Quick test_pass_on_empty_graph;
        ] );
      ( "loader",
        [
          Alcotest.test_case "missing file" `Quick test_missing_file_is_an_error;
          Alcotest.test_case "missing include" `Quick
            test_missing_include_is_an_error;
          prop_parser_total;
          prop_pexp_total;
        ] );
    ]
