(* Property-test analogues of the paper's metatheory (Theorem 2), plus
   implementation-equivalence properties between the three matchers.

   - succ_sound: machine success(theta, phi)  =>  p @ <theta,phi> ~= t
   - fail_sound: machine failure  =>  no witness exists (via enumeration)
   - the production matcher computes exactly the machine's first result
   - enumeration's first witness is the machine's witness

   These run on thousands of random (pattern, term) pairs drawn both from
   the matching-biased generator and the independent generator. *)

open Pypm_term
open Pypm_pattern
open Pypm_semantics
open Pypm_testutil
module F = Fixtures
module P = Pattern

let interp = F.interp
let fuel = 60_000

let machine ?(policy = Outcome.Policy.Faithful) p t =
  Machine.run ~interp ~policy ~fuel p t

let matcher ?(policy = Outcome.Policy.Faithful) p t =
  Matcher.matches ~interp ~policy ~fuel p t

(* Theorem 2, first half: success soundness. *)
let prop_succ_sound =
  F.qtest ~count:2000 "succ_sound: machine success implies declarative match"
    F.Gen.pair F.pattern_print (fun (p, t) ->
      match machine p t with
      | Outcome.Matched (theta, phi) ->
          Declarative.check ~interp ~fuel p theta phi t
      | _ -> QCheck2.assume_fail ())

(* Theorem 2, second half: failure soundness, relative to the enumeration
   oracle. *)
let prop_fail_sound =
  F.qtest ~count:2000 "fail_sound: machine failure implies no witness"
    F.Gen.pair F.pattern_print (fun (p, t) ->
      match machine p t with
      | Outcome.No_match ->
          let r = Enumerate.all ~interp ~fuel p t in
          (not r.complete) || r.witnesses = []
      | _ -> QCheck2.assume_fail ())

(* The production matcher is extensionally the machine (faithful policy). *)
let prop_matcher_is_machine_faithful =
  F.qtest ~count:2000 "matcher = machine (faithful)" F.Gen.pair
    F.pattern_print (fun (p, t) ->
      match (machine p t, matcher p t) with
      | Outcome.Out_of_fuel, _ | _, Outcome.Out_of_fuel ->
          QCheck2.assume_fail ()
      | a, b -> Outcome.equal a b)

(* ... and under the production (backtrack) policy. *)
let prop_matcher_is_machine_backtrack =
  F.qtest ~count:2000 "matcher = machine (backtrack)" F.Gen.pair
    F.pattern_print (fun (p, t) ->
      let pol = Outcome.Policy.Backtrack in
      match (machine ~policy:pol p t, matcher ~policy:pol p t) with
      | Outcome.Out_of_fuel, _ | _, Outcome.Out_of_fuel ->
          QCheck2.assume_fail ()
      | a, b -> Outcome.equal a b)

(* Enumeration refines the machine: its first witness is the machine's. *)
let prop_enumerate_first_is_machine =
  F.qtest ~count:2000 "enumeration's first witness is the machine's"
    F.Gen.pair F.pattern_print (fun (p, t) ->
      match machine p t with
      | Outcome.Matched (theta, phi) -> (
          let r = Enumerate.all ~interp ~fuel p t in
          match r.witnesses with
          | (theta', phi') :: _ ->
              Subst.equal theta theta' && Fsubst.equal phi phi'
          | [] -> not r.complete)
      | _ -> QCheck2.assume_fail ())

(* Every enumerated witness is declaratively valid. *)
let prop_enumerated_witnesses_check =
  F.qtest ~count:800 "every enumerated witness satisfies the judgment"
    F.Gen.pair F.pattern_print (fun (p, t) ->
      let r = Enumerate.all ~interp ~fuel p t in
      List.for_all
        (fun (theta, phi) -> Declarative.check ~interp ~fuel p theta phi t)
        r.witnesses)

(* Machine match implies the existential judgment holds. *)
let prop_matched_implies_holds =
  F.qtest ~count:800 "match implies holds" F.Gen.pair F.pattern_print
    (fun (p, t) ->
      match machine p t with
      | Outcome.Matched _ -> Declarative.holds ~interp ~fuel p t
      | _ -> QCheck2.assume_fail ())

(* Witnesses are reproducible: running the machine twice is deterministic. *)
let prop_machine_deterministic =
  F.qtest ~count:500 "machine is deterministic" F.Gen.pair F.pattern_print
    (fun (p, t) -> Outcome.equal (machine p t) (machine p t))

(* Matching is stable under wrapping both sides with a fresh unary context:
   g(p) vs g(t) behaves as p vs t. *)
let prop_context_stable =
  F.qtest ~count:800 "context stability" F.Gen.pair F.pattern_print
    (fun (p, t) ->
      let lifted = machine (P.app "g" [ p ]) (Term.app "g" [ t ]) in
      let base = machine p t in
      match (base, lifted) with
      | Outcome.Out_of_fuel, _ | _, Outcome.Out_of_fuel ->
          QCheck2.assume_fail ()
      | a, b -> Outcome.equal a b)

(* The shared matching plan preserves the first witness: for every pattern
   in the compilable fragment, the plan's match of a single-pattern library
   is exactly the production matcher's first result (backtrack policy). *)
let prop_plan_first_witness =
  F.qtest ~count:2000 "plan first witness = matcher (backtrack)" F.Gen.pair
    F.pattern_print (fun (p, t) ->
      match Skeleton.extract p with
      | None -> QCheck2.assume_fail ()
      | Some _ -> (
          let plan = Pypm.Plan.compile [ ("P", p) ] in
          let expected =
            Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel p t
          in
          let got =
            List.assoc_opt "P" (Pypm.Plan.match_node plan ~interp t)
          in
          match (expected, got) with
          | Outcome.Matched (theta, phi), Some (theta', phi') ->
              Subst.equal theta theta' && Fsubst.equal phi phi'
          | Outcome.Out_of_fuel, _ -> QCheck2.assume_fail ()
          | (Outcome.No_match | Outcome.Stuck), None -> true
          | _ -> false))

(* The theory against the application: over every node of real model
   graphs and every corpus pattern (with the tensor attribute
   interpretation), the abstract machine and the production matcher agree
   exactly, and every match is declaratively valid with a checkable
   derivation. *)
let test_realistic_workload_agreement () =
  let open Pypm in
  let models =
    [
      Zoo.find "bert-mini"; Zoo.find "resnet10-ish"; Zoo.find "vgg11-ish";
    ]
  in
  let checked = ref 0 and matched = ref 0 in
  List.iter
    (fun m ->
      let m = Option.get m in
      let env, g = m.Pypm.Zoo.build () in
      let prog = Pypm.Corpus.full_program env.Pypm.Std_ops.sg in
      let view = Pypm.Term_view.create g in
      let tensor_interp = Pypm.Term_view.interp view in
      List.iter
        (fun node ->
          let t = Pypm.Term_view.term_of view node in
          List.iter
            (fun (e : Pypm.Program.entry) ->
              let pat = e.Pypm.Program.pattern in
              let a =
                Machine.run ~interp:tensor_interp
                  ~policy:Outcome.Policy.Backtrack ~fuel:200_000 pat t
              in
              let b =
                Matcher.matches ~interp:tensor_interp
                  ~policy:Outcome.Policy.Backtrack ~fuel:200_000 pat t
              in
              incr checked;
              if not (Outcome.equal a b) then
                Alcotest.failf "machine/matcher disagree on %s at node %d"
                  e.Pypm.Program.pname node.Pypm.Graph.id;
              match a with
              | Outcome.Matched (theta, phi) ->
                  incr matched;
                  if
                    not
                      (Declarative.check ~interp:tensor_interp ~fuel:200_000
                         pat theta phi t)
                  then
                    Alcotest.failf "unsound match of %s at node %d"
                      e.Pypm.Program.pname node.Pypm.Graph.id;
                  (match
                     Derivation.derive ~interp:tensor_interp ~fuel:200_000 pat
                       theta phi t
                   with
                  | Some d ->
                      if not (Derivation.validate ~interp:tensor_interp d)
                      then Alcotest.fail "derivation does not validate"
                  | None -> Alcotest.fail "no derivation for a sound match")
              | _ -> ())
            prog.Pypm.Program.entries)
        (Pypm.Graph.live_nodes g))
    models;
  Alcotest.(check bool) "exercised" true (!checked > 1000 && !matched > 10)

let () =
  Alcotest.run "equivalence"
    [
      ( "theorem-2",
        [ prop_succ_sound; prop_fail_sound ] );
      ( "implementations",
        [
          prop_matcher_is_machine_faithful;
          prop_matcher_is_machine_backtrack;
          prop_enumerate_first_is_machine;
          prop_enumerated_witnesses_check;
          prop_matched_implies_holds;
          prop_machine_deterministic;
          prop_context_stable;
          prop_plan_first_witness;
        ] );
      ( "realistic",
        [
          Alcotest.test_case "corpus patterns over model graphs" `Quick
            test_realistic_workload_agreement;
        ] );
    ]
