(* The pattern-set compiler (lib/plan): skeleton extraction, prefix
   sharing in the shared trie, guard hoisting safety, first-witness
   preservation against the production matcher, and incremental-mode
   fixpoint equivalence with the full-traversal pass on every zoo model. *)

open Pypm_term
open Pypm_pattern
open Pypm_semantics
module F = Pypm_testutil.Fixtures
module P = Pattern
module Plan = Pypm.Plan

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Skeleton extraction                                                 *)
(* ------------------------------------------------------------------ *)

let test_extract_fragment () =
  checkb "app/var compiles" true
    (Skeleton.extract (P.app "f" [ P.var "x"; P.var "y" ]) <> None);
  checkb "alt compiles" true
    (Skeleton.extract (P.alt (P.app "g" [ P.var "x" ]) (P.var "x")) <> None);
  checkb "mu falls back" true
    (Skeleton.extract
       (P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ]
          (P.alt (P.app "g" [ P.call "P" [ "x" ] ]) (P.var "x")))
    = None);
  checkb "constr falls back" true
    (Skeleton.extract (P.constr (P.var "x") (P.app "g" [ P.var "y" ]) "x")
    = None);
  (match
     Skeleton.extract
       (P.app "f"
          [ P.alt (P.var "x") (P.const "a"); P.alt (P.var "y") (P.const "b") ])
   with
  | Some bs -> checki "2x2 alternates expand to 4 branches" 4 (List.length bs)
  | None -> Alcotest.fail "expected compilable");
  (* expansion budget: a pattern wider than max_branches falls back *)
  let wide =
    P.app "f"
      [
        P.alts (List.init 20 (fun i -> P.const (Printf.sprintf "c%d" i)));
        P.alts (List.init 20 (fun i -> P.const (Printf.sprintf "d%d" i)));
      ]
  in
  checkb "expansion budget enforced" true
    (Skeleton.extract ~max_branches:64 wide = None)

(* ------------------------------------------------------------------ *)
(* Prefix sharing                                                      *)
(* ------------------------------------------------------------------ *)

let test_prefix_sharing () =
  (* Two patterns with a common skeleton f(g(x), _): the trie performs the
     three shared prefix instructions once. *)
  let p1 = P.app "f" [ P.app "g" [ P.var "x" ]; P.var "y" ] in
  let p2 = P.app "f" [ P.app "g" [ P.var "x" ]; P.const "a" ] in
  let plan = Plan.compile [ ("P1", p1); ("P2", p2) ] in
  checki "two branches" 2 (Plan.branch_count plan);
  checki "eight instructions before sharing" 8 (Plan.instr_total plan);
  checki "five trie edges after sharing" 5 (Plan.node_count plan - 1);
  checki "three instructions shared" 3
    (Plan.instr_total plan - (Plan.node_count plan - 1));
  (* both still match independently *)
  let t1 = Term.app "f" [ F.g1 F.a; F.b ] in
  let r = Plan.match_node plan ~interp:F.interp t1 in
  checkb "P1 matches" true (List.mem_assoc "P1" r);
  checkb "P2 does not" false (List.mem_assoc "P2" r);
  let t2 = Term.app "f" [ F.g1 F.b; F.a ] in
  let r2 = Plan.match_node plan ~interp:F.interp t2 in
  checkb "both match" true (List.mem_assoc "P1" r2 && List.mem_assoc "P2" r2)

(* Alternates of one pattern share their common prefix too. *)
let test_prefix_sharing_within_pattern () =
  let p =
    P.app "f" [ P.app "g" [ P.var "x" ]; P.alt (P.const "a") (P.const "b") ]
  in
  let plan = Plan.compile [ ("P", p) ] in
  checki "two branches" 2 (Plan.branch_count plan);
  (* 4 + 4 instructions, 3 shared *)
  checki "shared prefix" 3
    (Plan.instr_total plan - (Plan.node_count plan - 1))

(* ------------------------------------------------------------------ *)
(* Guard hoisting safety                                               *)
(* ------------------------------------------------------------------ *)

(* A guard that mentions a variable bound only by a LATER sibling must
   fail the branch, exactly like the matcher's Backtrack policy (the
   guard's natural evaluation point precedes the binding). Hoisting must
   never move a guard later. *)
let test_guard_not_moved_later () =
  let g = Guard.Le (Guard.Const 1, Guard.Var_attr ("y", "size")) in
  let p = P.app "f" [ P.Guarded (P.var "x", g); P.var "y" ] in
  let t = F.f2 F.a F.b in
  checkb "matcher rejects" true
    (Matcher.matches ~interp:F.interp ~policy:Outcome.Policy.Backtrack p t
    = Outcome.No_match);
  let plan = Plan.compile [ ("P", p) ] in
  checki "plan rejects too" 0
    (List.length (Plan.match_node plan ~interp:F.interp t))

(* A guard over an early-bound variable is hoisted before later structure:
   same outcome, fewer steps on mismatching subjects. *)
let test_guard_hoisted_earlier () =
  let deep k =
    let rec go n = if n = 0 then P.var "y" else P.app "g" [ go (n - 1) ] in
    go k
  in
  let guard = Guard.Le (Guard.Const 99, Guard.Var_attr ("x", "size")) in
  let p = P.app "f" [ P.var "x"; P.Guarded (deep 6, guard) ] in
  let plan = Plan.compile [ ("P", p) ] in
  (* subject whose x is tiny: the hoisted guard fails before the deep
     right-hand structure is traversed *)
  let rec tower n = if n = 0 then F.b else F.g1 (tower (n - 1)) in
  let t = F.f2 F.a (tower 6) in
  checki "no match" 0 (List.length (Plan.match_node plan ~interp:F.interp t));
  let steps = Plan.last_steps () in
  checkb (Printf.sprintf "guard fails early (%d steps)" steps) true (steps <= 4);
  (* and the matcher agrees on the outcome *)
  checkb "matcher agrees" true
    (Matcher.matches ~interp:F.interp ~policy:Outcome.Policy.Backtrack p t
    = Outcome.No_match)

(* ------------------------------------------------------------------ *)
(* First-witness preservation on the corpus                            *)
(* ------------------------------------------------------------------ *)

let corpus_plan prog =
  Plan.compile
    (List.map
       (fun (e : Pypm.Program.entry) ->
         (e.Pypm.Program.pname, e.Pypm.Program.pattern))
       prog.Pypm.Program.entries)

let test_corpus_classification () =
  let open Pypm in
  let env = Std_ops.make () in
  let prog = Corpus.full_program env.Std_ops.sg in
  let plan = corpus_plan prog in
  let compiled = Plan.compiled_names plan and fb = Plan.fallback_names plan in
  checkb "MHA compiled" true (List.mem "MHA" compiled);
  checkb "Gelu compiled" true (List.mem "Gelu" compiled);
  checkb "ConvEpilog (match constraint) falls back" true
    (List.mem "ConvEpilog" fb);
  checkb "ReluChain (mu) falls back" true (List.mem "ReluChain" fb);
  checkb "most of the corpus compiles" true (List.length compiled >= 10)

let test_first_witness_on_model () =
  let open Pypm in
  let m = Option.get (Zoo.find "bert-mini") in
  let env, g = m.Zoo.build () in
  let prog = Corpus.full_program env.Std_ops.sg in
  let plan = corpus_plan prog in
  let compiled = Plan.compiled_names plan in
  let view = Term_view.create g in
  let interp = Term_view.interp view in
  let agreed = ref 0 and matched = ref 0 in
  List.iter
    (fun node ->
      let t = Term_view.term_of view node in
      let results = Plan.match_node plan ~interp t in
      List.iter
        (fun (e : Program.entry) ->
          if List.mem e.Program.pname compiled then begin
            let expected =
              Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack
                ~fuel:200_000 e.Program.pattern t
            in
            incr agreed;
            match (expected, List.assoc_opt e.Program.pname results) with
            | Outcome.Matched (th, ph), Some (th', ph') ->
                incr matched;
                if not (Subst.equal th th' && Fsubst.equal ph ph') then
                  Alcotest.failf "witness differs for %s at node %d"
                    e.Program.pname node.Graph.id
            | Outcome.Matched _, None ->
                Alcotest.failf "plan missed a %s match at node %d"
                  e.Program.pname node.Graph.id
            | _, Some _ ->
                Alcotest.failf "plan over-matched %s at node %d"
                  e.Program.pname node.Graph.id
            | _, None -> ()
          end)
        prog.Program.entries)
    (Graph.live_nodes g);
  checkb "exercised" true (!agreed > 500 && !matched > 5)

(* ------------------------------------------------------------------ *)
(* Incremental fixpoint equivalence on every zoo model                 *)
(* ------------------------------------------------------------------ *)

(* Structural hash of the live graph after normalization. Two runs of the
   same model builder allocate fresh input symbols from a global counter
   ([tokens%1] vs [tokens%19]), so uid suffixes are relabelled by order of
   first appearance in a deterministic DFS from the outputs. Node ids are
   deliberately excluded — engines may allocate different ids for rejected
   rule instantiations. *)
let graph_hash g =
  ignore (Pypm.Graph.gc g);
  let uids = Hashtbl.create 32 in
  let canon_sym (s : Pypm.Symbol.t) =
    match String.index_opt (s :> string) '%' with
    | None -> (s :> string)
    | Some i ->
        let k =
          match Hashtbl.find_opt uids s with
          | Some k -> k
          | None ->
              let k = Hashtbl.length uids in
              Hashtbl.add uids s k;
              k
        in
        Printf.sprintf "%s#%d" (String.sub (s :> string) 0 i) k
  in
  let buf = Buffer.create 4096 in
  (* Shared subgraphs are emitted once and referenced by DFS-visit index
     afterwards — the hash sees the DAG, not its exponential tree
     expansion, and stays id-independent. *)
  let seen = Hashtbl.create 256 in
  let rec go (n : Pypm.Graph.node) =
    match Hashtbl.find_opt seen n.Pypm.Graph.id with
    | Some k -> Buffer.add_string buf (Printf.sprintf "@%d" k)
    | None ->
        Hashtbl.add seen n.Pypm.Graph.id (Hashtbl.length seen);
        Buffer.add_string buf (canon_sym n.Pypm.Graph.op);
        List.iter
          (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "{%s=%d}" k v))
          (List.sort compare n.Pypm.Graph.attrs);
        (match n.Pypm.Graph.inputs with
        | [] -> ()
        | inputs ->
            Buffer.add_char buf '(';
            List.iteri
              (fun i u ->
                if i > 0 then Buffer.add_char buf ',';
                go u)
              inputs;
            Buffer.add_char buf ')')
  in
  List.iter
    (fun o ->
      go o;
      Buffer.add_char buf ';')
    (Pypm.Graph.outputs g);
  Hashtbl.hash (Buffer.contents buf)

let test_incremental_fixpoint_equivalence () =
  let open Pypm in
  List.iter
    (fun (m : Zoo.model) ->
      let run engine =
        let env, g = m.Zoo.build () in
        let stats = Pass.run ~engine (Corpus.both_program env.Std_ops.sg) g in
        (stats, graph_hash g)
      in
      let s_full, h_full = run Pass.Naive in
      let s_plan, h_plan = run Pass.Plan in
      if s_full.Pass.total_rewrites <> s_plan.Pass.total_rewrites then
        Alcotest.failf "%s: rewrites differ (full %d, plan %d)" m.Zoo.mname
          s_full.Pass.total_rewrites s_plan.Pass.total_rewrites;
      if h_full <> h_plan then
        Alcotest.failf "%s: final graphs differ" m.Zoo.mname;
      checkb "plan reached fixpoint" true s_plan.Pass.reached_fixpoint)
    (Zoo.all ())

(* The plan engine runs the backtracking matcher strictly less than the
   root-head index, and accounts pruning distinctly from index skips. *)
let test_plan_prunes_more_than_index () =
  let open Pypm in
  let m = Option.get (Zoo.find "gpt2-small") in
  let measure engine =
    let env, g = m.Zoo.build () in
    let prog = Corpus.both_program env.Std_ops.sg in
    Matcher.reset_cumulative_visits ();
    let stats = Pass.match_only ~engine prog g in
    (stats, Matcher.cumulative_visits ())
  in
  let s_idx, v_idx = measure Pass.Index in
  let s_plan, v_plan = measure Pass.Plan in
  checkb "plan uses strictly fewer matcher visits" true (v_plan < v_idx);
  let sum f s = List.fold_left (fun a ps -> a + f ps) 0 s.Pass.per_pattern in
  checkb "plan runs strictly fewer matcher attempts" true
    (sum (fun ps -> ps.Pass.attempts) s_plan
    < sum (fun ps -> ps.Pass.attempts) s_idx);
  checkb "plan prunes via the trie" true
    (sum (fun ps -> ps.Pass.plan_pruned) s_plan > 0);
  checki "index never plan-prunes" 0 (sum (fun ps -> ps.Pass.plan_pruned) s_idx);
  (* identical match counts *)
  checki "same matches"
    (sum (fun ps -> ps.Pass.matches) s_idx)
    (sum (fun ps -> ps.Pass.matches) s_plan)

let () =
  Alcotest.run "plan"
    [
      ( "skeleton",
        [
          Alcotest.test_case "decision fragment" `Quick test_extract_fragment;
        ] );
      ( "trie",
        [
          Alcotest.test_case "prefix sharing across patterns" `Quick
            test_prefix_sharing;
          Alcotest.test_case "prefix sharing within a pattern" `Quick
            test_prefix_sharing_within_pattern;
        ] );
      ( "guards",
        [
          Alcotest.test_case "guards never move later" `Quick
            test_guard_not_moved_later;
          Alcotest.test_case "guards hoist earlier" `Quick
            test_guard_hoisted_earlier;
        ] );
      ( "first-witness",
        [
          Alcotest.test_case "corpus classification" `Quick
            test_corpus_classification;
          Alcotest.test_case "corpus patterns over a model graph" `Quick
            test_first_witness_on_model;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "fixpoint equivalence on every zoo model" `Slow
            test_incremental_fixpoint_equivalence;
          Alcotest.test_case "plan prunes more than the index" `Quick
            test_plan_prunes_more_than_index;
        ] );
    ]
