(* Tests for the resilience layer: graph transactions and rollback, the
   instantiate-leak regression, per-pattern quarantine, the engine
   degradation ladder, wall-clock deadlines, deterministic fault
   injection (including a 500-schedule sweep across all three engines),
   the result-based Ematch/Saturate APIs, and the CLI's structured
   fatal-error exit. *)

open Pypm
module P = Pattern
module Inject = Resilience.Inject
module Breaker = Resilience.Breaker

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let f32 shape = Ty.make Dtype.F32 shape

let fresh () =
  let e = Std_ops.make () in
  (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())

(* A graph the relu-chain rule rewrites: a tower of [n] relus. *)
let relu_tower g ~n x =
  let rec go n acc = if n = 0 then acc else go (n - 1) (Graph.add g Std_ops.relu [ acc ]) in
  go n x

let chain_program env = Program.make ~sg:env.Std_ops.sg [ Corpus.relu_chain ]

let chain_graph ?(n = 5) () =
  let env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 8 ]) in
  Graph.set_outputs g [ relu_tower g ~n x ];
  (env, g)

(* ------------------------------------------------------------------ *)
(* Graph transactions                                                  *)
(* ------------------------------------------------------------------ *)

let test_txn_rollback_restores () =
  let _env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  Graph.set_outputs g [ r ];
  let before = List.length (Graph.nodes g) in
  let sp = Graph.Txn.begin_ g in
  let a = Graph.add g Std_ops.relu [ r ] in
  let _b = Graph.add g Std_ops.add [ a; r ] in
  Graph.set_outputs g [ _b ];
  let undone = Graph.Txn.rollback g sp in
  checkb "some mutations undone" true (undone > 0);
  checki "node count restored" before (List.length (Graph.nodes g));
  checki "outputs restored" r.Graph.id
    (List.hd (Graph.outputs g)).Graph.id;
  Alcotest.(check (list string)) "graph valid after rollback" []
    (Graph.validate g)

let test_txn_commit_keeps () =
  let _env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ x ] ];
  let before = List.length (Graph.nodes g) in
  let sp = Graph.Txn.begin_ g in
  let r2 = Graph.add g Std_ops.relu [ List.hd (Graph.outputs g) ] in
  Graph.set_outputs g [ r2 ];
  Graph.Txn.commit g sp;
  checki "committed nodes stay" (before + 1) (List.length (Graph.nodes g));
  checkb "journal drained outside transactions" true
    (not (Graph.Txn.active g))

let test_txn_nesting_lifo () =
  let _env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  Graph.set_outputs g [ x ];
  let outer = Graph.Txn.begin_ g in
  let a = Graph.add g Std_ops.relu [ x ] in
  let inner = Graph.Txn.begin_ g in
  let _b = Graph.add g Std_ops.relu [ a ] in
  ignore (Graph.Txn.rollback g inner);
  (* the inner rollback removed only b *)
  checkb "outer work survives inner rollback" true
    (List.exists (fun (n : Graph.node) -> n.Graph.id = a.Graph.id)
       (Graph.nodes g));
  ignore (Graph.Txn.rollback g outer);
  checkb "outer rollback removes the rest" true
    (not
       (List.exists (fun (n : Graph.node) -> n.Graph.id = a.Graph.id)
          (Graph.nodes g)))

let test_ids_not_reused_after_rollback () =
  (* rolled-back allocations must not recycle ids: provenance and obs
     events recorded before the rollback reference them *)
  let _env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  Graph.set_outputs g [ x ];
  let sp = Graph.Txn.begin_ g in
  let a = Graph.add g Std_ops.relu [ x ] in
  ignore (Graph.Txn.rollback g sp);
  let b = Graph.add g Std_ops.relu [ x ] in
  checkb "fresh node gets a fresh id" true (b.Graph.id > a.Graph.id)

let test_gc_refused_inside_txn () =
  let _env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  Graph.set_outputs g [ x ];
  let sp = Graph.Txn.begin_ g in
  (match Graph.gc g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gc inside an open transaction must be refused");
  Graph.Txn.commit g sp

(* ------------------------------------------------------------------ *)
(* The instantiate-leak regression                                     *)
(* ------------------------------------------------------------------ *)

let test_failing_instantiate_leaks_nothing () =
  let _env, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  Graph.set_outputs g [ r ];
  let view = Term_view.create g in
  let theta = Subst.of_list [ ("x", Term_view.term_of view r) ] in
  (* the first template argument materializes a node, then the second hits
     the unbound variable: pre-journal, that relu leaked until gc *)
  let rhs =
    Rule.Rapp
      (Std_ops.add, [ Rule.Rapp (Std_ops.relu, [ Rule.Rvar "x" ]); Rule.Rvar "nope" ])
  in
  let before = List.length (Graph.nodes g) in
  (match Rule.instantiate g view theta Fsubst.empty rhs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound template variable accepted");
  checki "no node leaked by the failed instantiate" before
    (List.length (Graph.nodes g));
  Alcotest.(check (list string)) "graph valid" [] (Graph.validate g)

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

let test_breaker_trips_once () =
  let b = Breaker.create ~threshold:3 in
  checkb "no trip on 1" false (Breaker.strike b);
  checkb "no trip on 2" false (Breaker.strike b);
  checkb "trips exactly on 3" true (Breaker.strike b);
  checkb "tripped" true (Breaker.tripped b);
  checkb "silent after the trip" false (Breaker.strike b);
  checki "strikes frozen" 3 (Breaker.strikes b);
  Breaker.reset b;
  checkb "re-armed" false (Breaker.tripped b);
  match Breaker.create ~threshold:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threshold 0 accepted"

(* ------------------------------------------------------------------ *)
(* Fault-injection schedules                                           *)
(* ------------------------------------------------------------------ *)

let test_inject_deterministic () =
  let drive () =
    let s = Inject.seeded ~seed:42 ~rate:0.5 () in
    List.init 200 (fun i ->
        Inject.fires s (List.nth Inject.all_points (i mod 5)))
  in
  checkb "same seed, same decisions" true (drive () = drive ());
  let s = Inject.seeded ~seed:43 ~rate:0.5 () in
  let other = List.init 200 (fun i ->
      Inject.fires s (List.nth Inject.all_points (i mod 5)))
  in
  checkb "different seed, different decisions" true (other <> drive ())

let test_inject_rate_and_caps () =
  let s = Inject.seeded ~seed:1 ~rate:0.0 () in
  for _ = 1 to 100 do
    checkb "rate 0 never fires" false (Inject.fires s Inject.Fuel_cut)
  done;
  let s = Inject.seeded ~seed:1 ~rate:1.0 ~max_fires:3 () in
  let fired =
    List.length
      (List.filter Fun.id
         (List.init 100 (fun _ -> Inject.fires s Inject.Guard_raise)))
  in
  checki "max_fires caps the faults" 3 fired;
  checki "fired counter" 3 (Inject.fired s);
  checki "queried counter" 100 (Inject.queried s);
  let s = Inject.seeded ~seed:1 ~rate:1.0 ~points:[ Inject.Fuel_cut ] () in
  checkb "unarmed point never fires" false (Inject.fires s Inject.Guard_raise);
  checkb "armed point fires" true (Inject.fires s Inject.Fuel_cut);
  match Inject.seeded ~seed:1 ~rate:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate out of range accepted"

let test_point_names_roundtrip () =
  List.iter
    (fun p ->
      match Inject.point_of_name (Inject.point_name p) with
      | Some p' -> checkb (Inject.point_name p) true (p = p')
      | None -> Alcotest.failf "name %s does not resolve" (Inject.point_name p))
    Inject.all_points;
  checkb "unknown name" true (Inject.point_of_name "frobnicate" = None)

(* ------------------------------------------------------------------ *)
(* Pass-level resilience                                               *)
(* ------------------------------------------------------------------ *)

(* Baseline sanity: without faults the chain program rewrites the tower. *)
let test_clean_run_rewrites () =
  let env, g = chain_graph () in
  let stats = Pass.run (chain_program env) g in
  checkb "rewrites fired" true (stats.Pass.total_rewrites > 0);
  checks "engine recorded" "naive" stats.Pass.engine_used;
  checkb "no errors" true (stats.Pass.errors = [] && stats.Pass.fatal = None)

let test_rollback_preserves_fingerprint () =
  let env, g = chain_graph () in
  let before = Fuzz.fingerprint g in
  let inject =
    Inject.seeded ~seed:11 ~rate:1.0 ~points:[ Inject.Instantiate_fail ] ()
  in
  let stats = Pass.run ~inject (chain_program env) g in
  checki "no rewrites" 0 stats.Pass.total_rewrites;
  checkb "attempts were rolled back" true (stats.Pass.rolled_back > 0);
  checks "fingerprint unchanged" before (Fuzz.fingerprint g);
  Alcotest.(check (list string)) "graph valid" [] (Graph.validate g)

let test_cycle_rejection_counted_and_rolled_back () =
  let env, g = chain_graph () in
  let before = Fuzz.fingerprint g in
  let inject =
    Inject.seeded ~seed:5 ~rate:1.0 ~points:[ Inject.Replace_cycle ] ()
  in
  let stats = Pass.run ~inject (chain_program env) g in
  checkb "cycle rejections counted" true (stats.Pass.cycle_rejections > 0);
  checki "no rewrites" 0 stats.Pass.total_rewrites;
  checks "fingerprint unchanged" before (Fuzz.fingerprint g);
  Alcotest.(check (list string)) "graph valid" [] (Graph.validate g)

let test_guard_raise_becomes_error () =
  let env, g = chain_graph () in
  let inject =
    Inject.seeded ~seed:2 ~rate:1.0 ~points:[ Inject.Guard_raise ] ()
  in
  let stats = Pass.run ~inject (chain_program env) g in
  checki "no rewrites" 0 stats.Pass.total_rewrites;
  checkb "guard errors recorded" true
    (List.exists
       (function Pass.Guard_raised _ -> true | _ -> false)
       stats.Pass.errors);
  Alcotest.(check (list string)) "graph valid" [] (Graph.validate g)

let test_fuel_cut_quarantines () =
  let env, g = chain_graph ~n:8 () in
  let inject =
    Inject.seeded ~seed:3 ~rate:1.0 ~points:[ Inject.Fuel_cut ] ()
  in
  let stats = Pass.run ~inject ~quarantine_after:3 (chain_program env) g in
  checkb "fuel exhaustions surfaced" true (stats.Pass.fuel_exhausted > 0);
  checki "pattern quarantined" 1 stats.Pass.quarantined;
  checkb "per-pattern flag set" true
    (match Pass.find_pattern_stats stats "ReluChain" with
    | Some ps -> ps.Pass.quarantined
    | None -> false)

let test_quarantine_stops_attempts () =
  (* after the trip, the pattern is skipped: attempts stay below the
     number of matching nodes times traversals *)
  let env, g = chain_graph ~n:10 () in
  let inject =
    Inject.seeded ~seed:3 ~rate:1.0 ~points:[ Inject.Fuel_cut ] ()
  in
  let stats = Pass.run ~inject ~quarantine_after:2 (chain_program env) g in
  (match Pass.find_pattern_stats stats "ReluChain" with
  | Some ps ->
      checkb "attempts stop at the trip" true (ps.Pass.attempts <= 3)
  | None -> Alcotest.fail "no stats for ReluChain");
  checki "quarantined" 1 stats.Pass.quarantined

let test_deadline_partial_stats () =
  let env, g = chain_graph ~n:6 () in
  let stats = Pass.run ~deadline_s:0.0 (chain_program env) g in
  checkb "deadline hit" true stats.Pass.deadline_hit;
  checkb "not a fixpoint" true (not stats.Pass.reached_fixpoint);
  checki "stopped before rewriting" 0 stats.Pass.total_rewrites;
  Alcotest.(check (list string)) "graph valid" [] (Graph.validate g)

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let test_ladder_plan_to_index () =
  let env, g = chain_graph () in
  let clean = Pass.run ~engine:Pass.Plan (chain_program env) g in
  let env2, g2 = chain_graph () in
  ignore env2;
  let inject =
    Inject.seeded ~seed:1 ~rate:1.0 ~max_fires:1
      ~points:[ Inject.Plan_compile ] ()
  in
  let c = Obs.Collector.create () in
  let stats =
    Obs.with_sink (Obs.Collector.sink c) (fun () ->
        Pass.run ~engine:Pass.Plan ~inject (chain_program env) g2)
  in
  checks "degraded to index" "index" stats.Pass.engine_used;
  checki "same rewrites as the healthy run" clean.Pass.total_rewrites
    stats.Pass.total_rewrites;
  checkb "degradation event emitted" true
    (List.exists
       (fun (e : Obs.event) ->
         match e.Obs.kind with
         | Obs.Engine_degraded { from_ = "plan"; to_ = "index"; _ } -> true
         | _ -> false)
       (Obs.Collector.events c))

let test_ladder_to_naive_then_fatal () =
  let env, g = chain_graph () in
  let inject =
    Inject.seeded ~seed:1 ~rate:1.0 ~max_fires:2
      ~points:[ Inject.Plan_compile ] ()
  in
  let stats = Pass.run ~engine:Pass.Plan ~inject (chain_program env) g in
  checks "bottom rung reached" "naive" stats.Pass.engine_used;
  checkb "still rewrote" true (stats.Pass.total_rewrites > 0);
  (* and with every rung poisoned: fatal, contained, graph untouched *)
  let env2, g2 = chain_graph () in
  ignore env2;
  let before = Fuzz.fingerprint g2 in
  let inject =
    Inject.seeded ~seed:1 ~rate:1.0 ~points:[ Inject.Plan_compile ] ()
  in
  match Pass.run_result ~engine:Pass.Plan ~inject (chain_program env) g2 with
  | Ok _ -> Alcotest.fail "no engine available but the pass claims success"
  | Error (Pass.Engine_unavailable { engine; _ }, stats) ->
      checks "died at the bottom rung" "naive" engine;
      checkb "fatal recorded" true (stats.Pass.fatal <> None);
      checks "graph untouched" before (Fuzz.fingerprint g2)
  | Error (e, _) -> Alcotest.failf "unexpected error: %s" (Pass.error_message e)

(* ------------------------------------------------------------------ *)
(* 500 seeded schedules x 3 engines never corrupt the graph            *)
(* ------------------------------------------------------------------ *)

let test_fault_schedule_sweep () =
  let engines = [ Pass.Naive; Pass.Index; Pass.Plan ] in
  for seed = 0 to 499 do
    List.iter
      (fun engine ->
        let env, g = fresh () in
        let x = Graph.input g ~name:"x" (f32 [ 8 ]) in
        let t = relu_tower g ~n:4 x in
        Graph.set_outputs g [ Graph.add g Std_ops.add [ t; relu_tower g ~n:2 x ] ];
        let inject = Inject.seeded ~seed ~rate:0.4 () in
        let stats =
          try Pass.run ~engine ~inject ~quarantine_after:2 (chain_program env) g
          with e ->
            Alcotest.failf "seed %d, %s engine: pass raised %s" seed
              (Pass.engine_name engine) (Printexc.to_string e)
        in
        ignore stats;
        match Graph.validate g with
        | [] -> ()
        | errs ->
            Alcotest.failf "seed %d, %s engine: invalid graph: %s" seed
              (Pass.engine_name engine)
              (String.concat "; " errs))
      engines
  done

(* ------------------------------------------------------------------ *)
(* Result-based Ematch / Saturate APIs                                 *)
(* ------------------------------------------------------------------ *)

let test_ematch_unsupported_is_error () =
  let g = Egraph.create () in
  let cls = Egraph.add_term g (Term.const "a") in
  (match Ematch.matches_in g (P.Guarded (P.var "x", Guard.True)) cls with
  | Error reason -> checkb "reason given" true (String.length reason > 0)
  | Ok _ -> Alcotest.fail "guarded pattern accepted by e-matching");
  match Ematch.matches g (P.mu "P" ~formals:[] ~actuals:[] (P.var "x")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recursive pattern accepted by e-matching"

let test_saturate_rw_validates () =
  (match
     Saturate.rw ~name:"bad"
       (P.app "g" [ P.var "x" ])
       (Saturate.Tvar "unbound")
   with
  | Error reason ->
      checkb "names the variable" true
        (String.length reason > 0)
  | Ok _ -> Alcotest.fail "unbound template variable accepted");
  (match
     Saturate.rw ~name:"badf" (P.app "g" [ P.var "x" ])
       (Saturate.Tfapp ("F", [ Saturate.Tvar "x" ]))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound operator variable accepted");
  match
    Saturate.rw ~name:"ok"
      (P.app "g" [ P.app "g" [ P.var "x" ] ])
      (Saturate.Tvar "x")
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid rewrite rejected: %s" e

(* ------------------------------------------------------------------ *)
(* CLI: structured fatal errors, no backtrace                          *)
(* ------------------------------------------------------------------ *)

(* The test binary runs from _build/default/test; the driver is a declared
   dependency at ../bin/pypmc.exe. *)
let pypmc = Filename.concat ".." (Filename.concat "bin" "pypmc.exe")

let test_cli_strict_structured_exit () =
  if not (Sys.file_exists pypmc) then
    Alcotest.skip ()
  else begin
    let err = Filename.temp_file "pypmc_strict" ".err" in
    let cmd =
      Printf.sprintf
        "%s optimize -m bert-tiny --fault-seed 3 --fault-rate 1.0 \
         --fault-points instantiate-fail --strict > %s 2> %s"
        (Filename.quote pypmc) Filename.null (Filename.quote err)
    in
    let code = Sys.command cmd in
    let stderr_text =
      let ic = open_in err in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Sys.remove err;
      s
    in
    checki "nonzero exit" 1 code;
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    checkb "structured message on stderr" true
      (contains stderr_text "fatal pass error");
    checkb "no raw OCaml backtrace" true
      (not (contains stderr_text "Fatal error: exception"));
    checkb "no Raised at frames" true (not (contains stderr_text "Raised at"))
  end

let () =
  Alcotest.run "resilience"
    [
      ( "txn",
        [
          Alcotest.test_case "rollback restores" `Quick test_txn_rollback_restores;
          Alcotest.test_case "commit keeps" `Quick test_txn_commit_keeps;
          Alcotest.test_case "nesting is LIFO" `Quick test_txn_nesting_lifo;
          Alcotest.test_case "ids not reused" `Quick
            test_ids_not_reused_after_rollback;
          Alcotest.test_case "gc refused inside txn" `Quick
            test_gc_refused_inside_txn;
        ] );
      ( "instantiate",
        [
          Alcotest.test_case "failing instantiate leaks nothing" `Quick
            test_failing_instantiate_leaks_nothing;
        ] );
      ( "breaker",
        [ Alcotest.test_case "trips once at threshold" `Quick test_breaker_trips_once ] );
      ( "inject",
        [
          Alcotest.test_case "deterministic" `Quick test_inject_deterministic;
          Alcotest.test_case "rate and caps" `Quick test_inject_rate_and_caps;
          Alcotest.test_case "point names roundtrip" `Quick
            test_point_names_roundtrip;
        ] );
      ( "pass",
        [
          Alcotest.test_case "clean run rewrites" `Quick test_clean_run_rewrites;
          Alcotest.test_case "rollback preserves fingerprint" `Quick
            test_rollback_preserves_fingerprint;
          Alcotest.test_case "cycle rejection rolled back" `Quick
            test_cycle_rejection_counted_and_rolled_back;
          Alcotest.test_case "guard raise becomes error" `Quick
            test_guard_raise_becomes_error;
          Alcotest.test_case "fuel cut quarantines" `Quick
            test_fuel_cut_quarantines;
          Alcotest.test_case "quarantine stops attempts" `Quick
            test_quarantine_stops_attempts;
          Alcotest.test_case "deadline partial stats" `Quick
            test_deadline_partial_stats;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "plan degrades to index" `Quick
            test_ladder_plan_to_index;
          Alcotest.test_case "to naive, then fatal" `Quick
            test_ladder_to_naive_then_fatal;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "500 schedules x 3 engines" `Slow
            test_fault_schedule_sweep;
        ] );
      ( "egraph-api",
        [
          Alcotest.test_case "ematch errors" `Quick
            test_ematch_unsupported_is_error;
          Alcotest.test_case "saturate rw validates" `Quick
            test_saturate_rw_validates;
        ] );
      ( "cli",
        [
          Alcotest.test_case "strict structured exit" `Slow
            test_cli_strict_structured_exit;
        ] );
    ]
