(* Tests for the equality-saturation baseline: e-graph invariants
   (hash-consing, union-find, congruence), e-matching, saturation, and the
   classic destructive-vs-nondestructive separation example. *)

open Pypm
module P = Pattern
module F = Pypm_testutil.Fixtures

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Unwrap the result APIs for rewrites and patterns this file constructs
   statically: a rejection here is a broken test, not a test failure. *)
let rw_exn ~name lhs rhs =
  match Saturate.rw ~name lhs rhs with Ok r -> r | Error e -> failwith e

let matches_in_exn g p cls =
  match Ematch.matches_in g p cls with Ok envs -> envs | Error e -> failwith e

(* the test signature: f/2, g/1, constants a b c *)
let a = Term.const "a"
let b = Term.const "b"
let g1 t = Term.app "g" [ t ]
let f2 t u = Term.app "f" [ t; u ]

(* ------------------------------------------------------------------ *)
(* E-graph invariants                                                  *)
(* ------------------------------------------------------------------ *)

let test_hashcons () =
  let g = Egraph.create () in
  let c1 = Egraph.add_term g (f2 a b) in
  let c2 = Egraph.add_term g (f2 a b) in
  checki "structurally equal terms share a class" c1 c2;
  let c3 = Egraph.add_term g (f2 b a) in
  checkb "different terms differ" true (not (Egraph.equiv g c1 c3))

let test_union_merges () =
  let g = Egraph.create () in
  let ca = Egraph.add_term g a in
  let cb = Egraph.add_term g b in
  checkb "distinct before" true (not (Egraph.equiv g ca cb));
  ignore (Egraph.union g ca cb);
  ignore (Egraph.rebuild g);
  checkb "equiv after union" true (Egraph.equiv g ca cb)

let test_congruence () =
  (* a ~ b must force g(a) ~ g(b) after rebuild *)
  let g = Egraph.create () in
  let ga = Egraph.add_term g (g1 a) in
  let gb = Egraph.add_term g (g1 b) in
  let ca = Egraph.add_term g a in
  let cb = Egraph.add_term g b in
  ignore (Egraph.union g ca cb);
  ignore (Egraph.rebuild g);
  checkb "congruence closure" true (Egraph.equiv g ga gb)

let test_congruence_propagates () =
  (* two levels: a ~ b forces g(g(a)) ~ g(g(b)) *)
  let g = Egraph.create () in
  let gga = Egraph.add_term g (g1 (g1 a)) in
  let ggb = Egraph.add_term g (g1 (g1 b)) in
  let ca = Egraph.add_term g a in
  let cb = Egraph.add_term g b in
  ignore (Egraph.union g ca cb);
  ignore (Egraph.rebuild g);
  checkb "two-level congruence" true (Egraph.equiv g gga ggb)

let test_extract_smallest () =
  let g = Egraph.create () in
  let big = Egraph.add_term g (g1 (g1 (g1 a))) in
  let small = Egraph.add_term g a in
  ignore (Egraph.union g big small);
  ignore (Egraph.rebuild g);
  match Egraph.extract g ~cost:Egraph.size_cost big with
  | Some t -> Alcotest.(check string) "extracts a" "a" (Term.to_string t)
  | None -> Alcotest.fail "no extraction"

let test_extract_respects_cost () =
  (* make g expensive: prefer f(a, a) (cost 3) over g(a) (cost 1 + 10) *)
  let g = Egraph.create () in
  let lhs = Egraph.add_term g (g1 a) in
  let rhs = Egraph.add_term g (f2 a a) in
  ignore (Egraph.union g lhs rhs);
  ignore (Egraph.rebuild g);
  let cost op = if op = "g" then 10. else 1. in
  match Egraph.extract g ~cost lhs with
  | Some t -> Alcotest.(check string) "cheapest" "f(a, a)" (Term.to_string t)
  | None -> Alcotest.fail "no extraction"

(* Pin the intended e-node view order directly. The polymorphic [compare]
   this replaced happened to agree while [Symbol.t] is a bare string; these
   assertions are against the contract, so a representation change that
   breaks the order breaks the test, not just downstream determinism. *)
let test_enode_view_order () =
  let module E = Egraph in
  checkb "operator-major" true (E.compare_enode_view ("a", [ 9; 9 ]) ("b", []) < 0);
  checkb "children left-to-right" true
    (E.compare_enode_view ("f", [ 1; 2 ]) ("f", [ 1; 3 ]) < 0);
  checkb "prefix orders first" true
    (E.compare_enode_view ("f", [ 1 ]) ("f", [ 1; 0 ]) < 0);
  checki "equal views" 0 (E.compare_enode_view ("f", [ 1; 2 ]) ("f", [ 1; 2 ]));
  let g = E.create () in
  let ca = E.add_term g a in
  let cb = E.add_term g b in
  let cf = E.add g "f" [ ca; cb ] in
  let cg = E.add g "g" [ ca ] in
  ignore (E.union g cf cg);
  ignore (E.rebuild g);
  let views = E.nodes_of g cf in
  checki "merged class keeps both enodes" 2 (List.length views);
  checkb "nodes_of is sorted by compare_enode_view" true
    (List.sort E.compare_enode_view views = views)

(* After a ~ g(a) the class contains an e-node whose child is the class
   itself. Extraction must terminate (the cost fixpoint never assigns a
   cost built from an uncosted child) and pick the base term. *)
let test_extract_cyclic_terminates () =
  let g = Egraph.create () in
  let ca = Egraph.add_term g a in
  let cga = Egraph.add_term g (g1 a) in
  ignore (Egraph.union g ca cga);
  ignore (Egraph.rebuild g);
  (match Egraph.extract g ~cost:Egraph.size_cost ca with
  | Some t ->
      Alcotest.(check string) "base term beats the cycle" "a" (Term.to_string t)
  | None -> Alcotest.fail "cyclic class with a base term must extract");
  match Egraph.extract_dag g ~cost:(fun _ _ _ -> 1.) ca with
  | None -> Alcotest.fail "extract_dag found nothing"
  | Some best ->
      let total, (op, _) = Hashtbl.find best (Egraph.find g ca) in
      Alcotest.(check string) "choice table picks the base enode" "a" op;
      Alcotest.(check (float 1e-9)) "total cost of the base" 1.0 total

(* ------------------------------------------------------------------ *)
(* E-matching                                                          *)
(* ------------------------------------------------------------------ *)

let test_ematch_basic () =
  let g = Egraph.create () in
  let root = Egraph.add_term g (f2 (g1 a) b) in
  let hits = matches_in_exn g (P.app "f" [ P.var "x"; P.var "y" ]) root in
  checki "one assignment" 1 (List.length hits);
  let env = List.hd hits in
  let ga_cls = Egraph.add_term g (g1 a) in
  checki "x bound to g(a)'s class" (Egraph.find g ga_cls)
    (Egraph.find g (Symbol.Map.find "x" env.Ematch.classes))

let test_ematch_nonlinear () =
  let g = Egraph.create () in
  let yes = Egraph.add_term g (f2 (g1 a) (g1 a)) in
  let no = Egraph.add_term g (f2 (g1 a) (g1 b)) in
  let p = P.app "f" [ P.var "x"; P.var "x" ] in
  checki "equal classes match" 1 (List.length (matches_in_exn g p yes));
  checki "unequal classes do not" 0 (List.length (matches_in_exn g p no))

let test_ematch_sees_merged_forms () =
  (* after a ~ g(b), the pattern g(y) matches the class of a as well *)
  let g = Egraph.create () in
  let ca = Egraph.add_term g a in
  let cgb = Egraph.add_term g (g1 b) in
  ignore (Egraph.union g ca cgb);
  ignore (Egraph.rebuild g);
  let hits = matches_in_exn g (P.app "g" [ P.var "y" ]) ca in
  checkb "matches through the equality" true (List.length hits >= 1)

let test_ematch_fvar_and_alt () =
  let g = Egraph.create () in
  let root = Egraph.add_term g (g1 a) in
  let p = P.alt (P.app "f" [ P.var "x"; P.var "y" ]) (P.fapp "F" [ P.var "x" ]) in
  let hits = matches_in_exn g p root in
  checki "one hit via the fvar alternate" 1 (List.length hits);
  Alcotest.(check (option string))
    "F bound" (Some "g")
    (Symbol.Map.find_opt "F" (List.hd hits).Ematch.ops)

let test_ematch_rejects_guards () =
  match Ematch.supported (P.Guarded (P.var "x", Guard.True)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "guards should be unsupported"

(* ------------------------------------------------------------------ *)
(* Saturation                                                          *)
(* ------------------------------------------------------------------ *)

(* g(g(x)) => x : saturation collapses towers *)
let tower_rule =
  rw_exn ~name:"gg"
    (P.app "g" [ P.app "g" [ P.var "x" ] ])
    (Saturate.Tvar "x")

let test_saturate_tower () =
  let rec tower n = if n = 0 then a else g1 (tower (n - 1)) in
  let best, stats = Saturate.simplify ~rules:[ tower_rule ] (tower 6) in
  Alcotest.(check string) "even tower collapses fully" "a" (Term.to_string best);
  checkb "saturated" true stats.Saturate.saturated;
  let best', _ = Saturate.simplify ~rules:[ tower_rule ] (tower 5) in
  Alcotest.(check string) "odd tower leaves one g" "g(a)" (Term.to_string best')

(* The classic separation example (egg's motivating case, transliterated):
     R1: f(x, b) => g(x)        ("strength-reduce against the first rule")
     R2: g(f(x, b)) => x        ("the combined simplification")
   On g(f(a, b)): greedy destructive rewriting applies R1 inside first
   (innermost redex found first in a bottom-up walk), producing g(g(a)) and
   destroying R2's redex. Saturation keeps both versions and extraction
   finds the single-node answer. *)
let sep_r1 =
  rw_exn ~name:"r1"
    (P.app "f" [ P.var "x"; P.const "b" ])
    (Saturate.Tapp ("g", [ Saturate.Tvar "x" ]))

let sep_r2 =
  rw_exn ~name:"r2"
    (P.app "g" [ P.app "f" [ P.var "x"; P.const "b" ] ])
    (Saturate.Tvar "x")

let test_saturation_beats_greedy_order () =
  let t = g1 (f2 a b) in
  let best, _ = Saturate.simplify ~rules:[ sep_r1; sep_r2 ] t in
  Alcotest.(check string) "saturation finds a" "a" (Term.to_string best);
  (* simulate the greedy destructive choice: apply R1 at the inner redex
     first, then R2 can no longer fire; the result is g(g(a)), which is
     strictly worse *)
  let after_greedy = g1 (g1 a) in
  checkb "greedy result is larger" true
    (Term.size after_greedy > Term.size (Term.const "a"))

let test_saturation_is_sound () =
  (* the extracted term is reachable by the rules: spot-check with a
     hand-verified normal form *)
  let t = f2 (g1 (g1 a)) b in
  let best, _ = Saturate.simplify ~rules:[ tower_rule; sep_r1 ] t in
  (* f(g(g(a)), b) ~ f(a, b) ~ g(a) *)
  Alcotest.(check string) "normal form" "g(a)" (Term.to_string best)

let test_growing_rule_saturates () =
  (* g(x) => g(g(x)) looks diverging, but the e-graph represents the
     infinite unfolding finitely: after one application g(a) ~ g(g(a)),
     and every further instance re-derives existing equalities. This is
     exactly the compactness that makes nondestructive rewriting viable. *)
  let grow =
    rw_exn ~name:"grow"
      (P.app "g" [ P.var "x" ])
      (Saturate.Tapp ("g", [ Saturate.Tapp ("g", [ Saturate.Tvar "x" ]) ]))
  in
  let best, stats = Saturate.simplify ~rules:[ grow ] (g1 a) in
  checkb "saturated despite the growing rule" true stats.Saturate.saturated;
  Alcotest.(check string) "extraction still minimal" "g(a)" (Term.to_string best)

let test_iter_limit_reported () =
  (* genuinely divergent: each iteration mints a fresh class g^n(a) as a
     new child of the f class, so the e-graph grows forever *)
  let diverge =
    rw_exn ~name:"diverge"
      (P.app "f" [ P.var "x"; P.var "y" ])
      (Saturate.Tapp ("f", [ Saturate.Tapp ("g", [ Saturate.Tvar "x" ]); Saturate.Tvar "y" ]))
  in
  let _, stats = Saturate.simplify ~rules:[ diverge ] ~iter_limit:3 (f2 a b) in
  checkb "hit the limit" true (not stats.Saturate.saturated);
  checki "iterations" 3 stats.Saturate.iterations;
  Alcotest.(check string)
    "stop reason is the budget, not a fixpoint claim" "iter_limit"
    (Saturate.stop_reason_name stats.Saturate.stop_reason)

(* The limit/fixpoint distinction is exact: a run whose final round changes
   nothing reports [Saturated] even when that round is the iteration
   limit's last — reaching the budget is not the same as being stopped by
   it. *)
let test_limit_vs_fixpoint_exact () =
  let rec tower n = if n = 0 then a else g1 (tower (n - 1)) in
  let _, s = Saturate.simplify ~rules:[ tower_rule ] ~iter_limit:2 (tower 2) in
  checkb "fixpoint proven at the boundary" true s.Saturate.saturated;
  Alcotest.(check string)
    "stop reason" "saturated"
    (Saturate.stop_reason_name s.Saturate.stop_reason);
  checki "both rounds executed" 2 s.Saturate.iterations

(* A disjunctive pattern whose branches bind different variables: matches
   through the branch that leaves a template variable unbound are skipped
   and counted, never fatal, and never block the fixpoint claim. *)
let test_skipped_disjunctive () =
  let partial =
    rw_exn ~name:"partial"
      (P.alt (P.app "f" [ P.var "x"; P.var "y" ]) (P.app "g" [ P.var "x" ]))
      (Saturate.Tapp ("f", [ Saturate.Tvar "x"; Saturate.Tvar "y" ]))
  in
  let g = Egraph.create () in
  let _ = Egraph.add_term g (g1 a) in
  let stats = Saturate.run g [ partial ] () in
  checki "no union performed" 0 stats.Saturate.applications;
  checkb "partial bindings counted as skipped" true
    (stats.Saturate.skipped_applications >= 1);
  checkb "still reaches a fixpoint" true stats.Saturate.saturated

(* ------------------------------------------------------------------ *)
(* Eqsat: the graph-level saturation phase                             *)
(* ------------------------------------------------------------------ *)

(* End-to-end over the graph IR: saturate under a program rule that
   strictly cheapens the output (softmax is multi-pass under the kernel
   cost model, relu a single pointwise sweep), extract, splice, and
   commit. Exercises the full phase: lowering, witness-typed cost,
   choice-table extraction, transactional splice. *)
let test_eqsat_phase_improves () =
  let e = Std_ops.make () in
  let g = Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer () in
  let x = Graph.input g ~name:"x" (Ty.make Dtype.F32 [ 64; 64 ]) in
  let sm = Graph.add g Std_ops.softmax [ x ] in
  Graph.set_outputs g [ sm ];
  let program =
    Program.make ~sg:e.Std_ops.sg
      [
        {
          Program.pname = "SM";
          pattern = P.app Std_ops.softmax [ P.var "x" ];
          rules =
            [
              Rule.make ~name:"cheaper" ~pattern:"SM"
                (Rule.Rapp (Std_ops.relu, [ Rule.Rvar "x" ]));
            ];
        };
      ]
  in
  match Eqsat.phase program g with
  | Error e -> Alcotest.fail e
  | Ok o ->
      checki "one splice committed" 1 o.Eqsat.spliced;
      checkb "whole-graph cost strictly improved" true
        (o.Eqsat.cost_after < o.Eqsat.cost_before);
      (match Graph.outputs g with
      | [ out ] ->
          Alcotest.(check string) "output rewritten" Std_ops.relu out.Graph.op
      | _ -> Alcotest.fail "one output expected");
      checkb "graph still validates" true (Graph.validate g = [])

(* property: saturation + extraction never increases term size under the
   shrinking rule set, and the result is stable (idempotent) *)
let prop_simplify_shrinks =
  F.qtest ~count:300 "saturation never enlarges (shrinking rules)"
    F.Gen.term Term.to_string (fun t ->
      let best, _ = Saturate.simplify ~rules:[ tower_rule; sep_r2 ] t in
      Term.size best <= Term.size t
      &&
      let again, _ = Saturate.simplify ~rules:[ tower_rule; sep_r2 ] best in
      Term.equal again best)

(* property: hash-consing is stable — adding a term twice yields the same
   class, on arbitrary terms *)
let prop_hashcons_stable =
  F.qtest ~count:300 "add_term is idempotent" F.Gen.term Term.to_string
    (fun t ->
      let g = Egraph.create () in
      Egraph.add_term g t = Egraph.add_term g t)

let () =
  Alcotest.run "egraph"
    [
      ( "egraph",
        [
          Alcotest.test_case "hashcons" `Quick test_hashcons;
          Alcotest.test_case "union" `Quick test_union_merges;
          Alcotest.test_case "congruence" `Quick test_congruence;
          Alcotest.test_case "congruence propagates" `Quick
            test_congruence_propagates;
          Alcotest.test_case "extract smallest" `Quick test_extract_smallest;
          Alcotest.test_case "extract respects cost" `Quick
            test_extract_respects_cost;
          Alcotest.test_case "enode view order pinned" `Quick
            test_enode_view_order;
          Alcotest.test_case "cyclic extraction terminates" `Quick
            test_extract_cyclic_terminates;
        ] );
      ( "ematch",
        [
          Alcotest.test_case "basic" `Quick test_ematch_basic;
          Alcotest.test_case "nonlinear" `Quick test_ematch_nonlinear;
          Alcotest.test_case "merged forms" `Quick
            test_ematch_sees_merged_forms;
          Alcotest.test_case "fvar + alternates" `Quick
            test_ematch_fvar_and_alt;
          Alcotest.test_case "guards rejected" `Quick
            test_ematch_rejects_guards;
        ] );
      ( "saturate",
        [
          Alcotest.test_case "tower collapse" `Quick test_saturate_tower;
          Alcotest.test_case "beats greedy ordering" `Quick
            test_saturation_beats_greedy_order;
          Alcotest.test_case "sound normal form" `Quick
            test_saturation_is_sound;
          Alcotest.test_case "growing rule saturates" `Quick
            test_growing_rule_saturates;
          Alcotest.test_case "iteration limit" `Quick test_iter_limit_reported;
          Alcotest.test_case "limit vs fixpoint exact" `Quick
            test_limit_vs_fixpoint_exact;
          Alcotest.test_case "disjunctive partial bindings skipped" `Quick
            test_skipped_disjunctive;
          prop_simplify_shrinks;
          prop_hashcons_stable;
        ] );
      ( "eqsat",
        [
          Alcotest.test_case "graph phase commits an improvement" `Quick
            test_eqsat_phase_improves;
        ] );
    ]
