(* Tests for the serving layer: the content-addressed LRU result cache
   (accounting, eviction, replacement, a concurrent stress run), the wire
   protocol (envelope round-trips, the incremental frame reader under
   arbitrary splits, decode totality), and the in-process server
   end-to-end — cold/warm byte identity, cache-driven Stats, structured
   errors for bad requests and injected faults, and admission-control
   shedding under a tiny queue bound. *)

open Pypm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let f32 shape = Ty.make Dtype.F32 shape

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let c = Cache.create ~max_bytes:4096 in
  checkb "cold miss" true (Cache.find c "k1" = None);
  Cache.add c "k1" "v1";
  (match Cache.find c "k1" with
  | Some v -> checks "hit returns the stored value" "v1" v
  | None -> Alcotest.fail "expected a hit");
  let s = Cache.stats c in
  checki "one hit" 1 s.Cache.hits;
  checki "one miss" 1 s.Cache.misses;
  checki "one entry" 1 s.Cache.entries;
  checkb "bytes charged" true (s.Cache.bytes > 0)

let test_cache_eviction_lru () =
  (* three entries of ~equal charge, room for two: adding the third must
     evict the least-recently-used, and a find refreshes recency *)
  let v = String.make 100 'x' in
  let charge = String.length "kN" + String.length v + 64 in
  let c = Cache.create ~max_bytes:(2 * charge) in
  Cache.add c "k1" v;
  Cache.add c "k2" v;
  ignore (Cache.find c "k1");
  (* k1 is now MRU *)
  Cache.add c "k3" v;
  (* k2 was LRU *)
  checkb "refreshed entry survives" true (Cache.find c "k1" <> None);
  checkb "LRU entry evicted" true (Cache.find c "k2" = None);
  checkb "new entry present" true (Cache.find c "k3" <> None);
  let s = Cache.stats c in
  checki "one eviction" 1 s.Cache.evictions;
  checkb "byte bound respected" true (s.Cache.bytes <= s.Cache.max_bytes)

let test_cache_replace_releases_charge () =
  let c = Cache.create ~max_bytes:4096 in
  Cache.add c "k" (String.make 1000 'a');
  let b1 = (Cache.stats c).Cache.bytes in
  Cache.add c "k" "tiny";
  let s = Cache.stats c in
  checki "still one entry" 1 s.Cache.entries;
  checkb "old charge released" true (s.Cache.bytes < b1);
  (match Cache.find c "k" with
  | Some v -> checks "replacement wins" "tiny" v
  | None -> Alcotest.fail "expected a hit")

let test_cache_oversized_skipped () =
  let c = Cache.create ~max_bytes:128 in
  Cache.add c "k" (String.make 4096 'a');
  checkb "oversized value not admitted" true (Cache.find c "k" = None);
  checki "nothing stored" 0 (Cache.stats c).Cache.entries

(* The concurrency invariant: a value read for a key is always exactly
   the value some writer stored for that key — never torn, never
   cross-wired — and the byte bound holds at the end. Values are derived
   from their key so any mixup is detectable. *)
let test_cache_concurrent_stress () =
  let value_of k = k ^ ":" ^ String.make (100 + (Hashtbl.hash k mod 400)) 'v' in
  let c = Cache.create ~max_bytes:8192 in
  let torn = Atomic.make 0 in
  let worker wid =
    Domain.spawn (fun () ->
        for i = 0 to 999 do
          let k = Printf.sprintf "key-%d" ((i + (wid * 7)) mod 40) in
          if i mod 3 = 0 then Cache.add c k (value_of k)
          else
            match Cache.find c k with
            | Some v when not (String.equal v (value_of k)) ->
                Atomic.incr torn
            | Some _ | None -> ()
        done)
  in
  List.iter Domain.join (List.init 4 worker);
  checki "no torn or cross-wired entries" 0 (Atomic.get torn);
  let s = Cache.stats c in
  checkb "byte bound holds after the stress" true
    (s.Cache.bytes <= s.Cache.max_bytes);
  checkb "cache saw traffic" true (s.Cache.hits + s.Cache.misses > 0)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let sample_options =
  {
    Protocol.default_options with
    Protocol.engine = "index";
    fuel = 1234;
    deadline_s = Some 0.5;
    strict = true;
    fault_seed = 42;
    fault_rate = 0.25;
    fault_points = [ "guard-raise"; "fuel-cut" ];
  }

let test_protocol_request_roundtrip () =
  List.iter
    (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok req2 -> checkb "request round-trips" true (req = req2)
      | Error m -> Alcotest.fail ("decode_request: " ^ m))
    [
      Protocol.Optimize
        {
          id = 7;
          program = Protocol.Named "both";
          options = sample_options;
          graph = "\x00\xffgraph bytes";
        };
      Protocol.Optimize
        {
          id = 8;
          program = Protocol.Inline "binary\x01bytes";
          options = Protocol.default_options;
          graph = "";
        };
      Protocol.Stats { id = 9 };
      Protocol.Health { id = 10 };
    ]

let test_protocol_response_roundtrip () =
  List.iter
    (fun resp ->
      match Protocol.decode_response (Protocol.encode_response resp) with
      | Ok resp2 -> checkb "response round-trips" true (resp = resp2)
      | Error m -> Alcotest.fail ("decode_response: " ^ m))
    [
      Protocol.Result
        { id = 1; cached = true; service_s = 0.125; body = "outcome\x00bytes" };
      Protocol.Stats_report
        {
          id = 2;
          stats =
            {
              Protocol.served = 10; shed = 1; errors = 2; cache_hits = 5;
              cache_misses = 5; cache_evictions = 1; cache_entries = 4;
              cache_bytes = 4096; workers = 4; uptime_s = 1.5;
            };
        };
      Protocol.Overloaded { id = 3 };
      Protocol.Bad_request { id = 4; reason = "no such engine" };
      Protocol.Server_error { id = 5; reason = "boom" };
      Protocol.Deadline_exceeded { id = 6; elapsed_s = 2.5 };
      Protocol.Draining { id = 7 };
      Protocol.Worker_crashed { id = 8; reason = "Injected_crash" };
      Protocol.Health_report
        {
          id = 9;
          health =
            {
              Protocol.status = "draining"; uptime_s = 12.5; workers_alive = 3;
              workers_total = 4; restarts = 2; poisoned = 1; inflight = 5;
            };
        };
    ]
  [@@ocamlformat "disable"]

let test_protocol_outcome_roundtrip () =
  let outcome =
    {
      Protocol.graph = "encoded graph";
      stats_json = "{\"engine\":\"plan\"}";
      errors =
        [
          Pass.Rule_failed
            { pattern = "p"; rule = "r"; reason = "instantiate failed" };
          Pass.Guard_raised { pattern = "q"; rule = "s"; reason = "Div0" };
        ];
      fatal =
        Some (Pass.Engine_unavailable { engine = "plan"; reason = "poisoned" });
    }
  in
  match Protocol.decode_outcome (Protocol.encode_outcome outcome) with
  | Ok o2 -> checkb "outcome round-trips" true (outcome = o2)
  | Error m -> Alcotest.fail ("decode_outcome: " ^ m)

let test_protocol_decode_total () =
  let bytes =
    Protocol.encode_request
      (Protocol.Optimize
         {
           id = 1;
           program = Protocol.Named "both";
           options = Protocol.default_options;
           graph = "gg";
         })
  in
  let n = String.length bytes in
  for k = 0 to n - 1 do
    match Protocol.decode_request (String.sub bytes 0 k) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded successfully" k
  done;
  for i = 0 to n - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    match Protocol.decode_request (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
    (* totality is the assertion: no exception escapes *)
  done

(* Feed two frames split at every possible boundary: the reader must
   produce exactly the same two payloads regardless of the split. *)
let test_reader_any_split () =
  let p1 = "first frame payload" and p2 = String.make 300 'z' in
  let stream = Protocol.frame p1 ^ Protocol.frame p2 in
  let n = String.length stream in
  for cut = 0 to n do
    let r = Protocol.Reader.create () in
    Protocol.Reader.feed r (String.sub stream 0 cut);
    Protocol.Reader.feed r (String.sub stream cut (n - cut));
    let got = ref [] in
    let rec drain () =
      match Protocol.Reader.next r with
      | `Frame f ->
          got := f :: !got;
          drain ()
      | `Await -> ()
      | `Error m -> Alcotest.failf "reader error at cut %d: %s" cut m
    in
    drain ();
    match List.rev !got with
    | [ a; b ] ->
        checkb "first payload intact" true (String.equal a p1);
        checkb "second payload intact" true (String.equal b p2)
    | l -> Alcotest.failf "cut %d: %d frame(s), expected 2" cut (List.length l)
  done

let test_reader_oversize_sticky () =
  let r = Protocol.Reader.create ~max_frame:64 () in
  Protocol.Reader.feed r (Protocol.frame (String.make 100 'a'));
  (match Protocol.Reader.next r with
  | `Error _ -> ()
  | `Frame _ | `Await -> Alcotest.fail "oversize frame not rejected");
  Protocol.Reader.feed r (Protocol.frame "small");
  match Protocol.Reader.next r with
  | `Error _ -> ()
  | `Frame _ | `Await -> Alcotest.fail "reader error is not sticky"

(* Regression: a 9-byte length varint whose last byte lands bits in the
   sign position (8 continuation bytes then 0x40: 0x40 lsl 56 wraps to
   min_int) made the accumulated "length" negative, which sailed under
   the [> max_frame] check and reached [Buffer.sub] as an
   [Invalid_argument] escaping into the accept loop. It must be a
   structured sticky error instead — before any allocation. *)
let test_reader_varint_overflow_rejected () =
  let r = Protocol.Reader.create () in
  Protocol.Reader.feed r (String.make 8 '\x80' ^ "\x40");
  (match Protocol.Reader.next r with
  | `Error _ -> ()
  | `Frame _ -> Alcotest.fail "negative frame length produced a frame"
  | `Await -> Alcotest.fail "negative frame length left the reader awaiting");
  (* a merely-huge positive length is rejected just the same *)
  let r2 = Protocol.Reader.create () in
  Protocol.Reader.feed r2 "\xff\xff\xff\xff\x7f";
  (match Protocol.Reader.next r2 with
  | `Error _ -> ()
  | `Frame _ | `Await -> Alcotest.fail "absurd frame length not rejected");
  (* and a varint that never terminates dies at the shift bound *)
  let r3 = Protocol.Reader.create () in
  Protocol.Reader.feed r3 (String.make 12 '\xff');
  match Protocol.Reader.next r3 with
  | `Error _ -> ()
  | `Frame _ | `Await -> Alcotest.fail "over-long varint not rejected"

(* ------------------------------------------------------------------ *)
(* In-process server                                                   *)
(* ------------------------------------------------------------------ *)

let test_socket name = Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "pypm-test-%s-%d.sock" name (Unix.getpid ()))

let test_config ?(workers = 2) ?(queue_bound = 64) ?(cache_bytes = 1 lsl 20)
    ?(job_deadline_s = Some 300.) ?(drain_timeout_s = 5.)
    ?(restart_budget = 10_000) socket_path =
  {
    Server.socket_path;
    workers;
    queue_bound;
    cache_bytes;
    max_frame_bytes = 1 lsl 20;
    job_deadline_s;
    drain_timeout_s;
    restart_budget;
  }

(* Run [f socket_path] against a live server; shuts the server down and
   joins its domain afterwards even if [f] fails, and asserts the run
   itself ended [Ok]. *)
let with_server_path ?workers ?queue_bound ?cache_bytes ?job_deadline_s
    ?drain_timeout_s ?restart_budget name f =
  let socket_path = test_socket name in
  let stopping = Atomic.make false in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          ~stop:(fun () -> Atomic.get stopping)
          (test_config ?workers ?queue_bound ?cache_bytes ?job_deadline_s
             ?drain_timeout_s ?restart_budget socket_path))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stopping true;
      match Domain.join srv with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("server exited with: " ^ msg))
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  checkb "server came up" true (Atomic.get ready);
  f socket_path

(* Same, handing [f] one connected client fd. *)
let with_server ?workers ?queue_bound ?cache_bytes ?job_deadline_s
    ?drain_timeout_s ?restart_budget name f =
  with_server_path ?workers ?queue_bound ?cache_bytes ?job_deadline_s
    ?drain_timeout_s ?restart_budget name
  @@ fun socket_path ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  f fd

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let read_response reader fd =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Protocol.Reader.next reader with
    | `Frame payload -> (
        match Protocol.decode_response payload with
        | Ok r -> r
        | Error m -> Alcotest.fail ("response decode: " ^ m))
    | `Error m -> Alcotest.fail ("reader: " ^ m)
    | `Await -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Alcotest.fail "server closed the connection"
        | n ->
            Protocol.Reader.feed reader (Bytes.sub_string buf 0 n);
            go ())
  in
  go ()

let roundtrip reader fd req =
  write_all fd (Protocol.frame (Protocol.encode_request req));
  read_response reader fd

(* A graph the epilog patterns rewrite, so outcomes are non-trivial. *)
let encoded_test_graph ?(name = "x") () =
  let env = Std_ops.make () in
  let g = Graph.create ~sg:env.Std_ops.sg ~infer:env.Std_ops.infer () in
  let x = Graph.input g ~name (f32 [ 8; 8 ]) in
  let y = Graph.input g ~name:(name ^ "b") (f32 [ 8; 8 ]) in
  let r = Graph.add g Std_ops.relu [ Graph.add g Std_ops.add [ x; y ] ] in
  Graph.set_outputs g [ r ];
  Codec.Graphs.encode g

let optimize ?(id = 0) ?(options = Protocol.default_options) graph =
  Protocol.Optimize { id; program = Protocol.Named "both"; options; graph }

let test_server_cold_warm_identical () =
  with_server "warm" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  let graph = encoded_test_graph () in
  let cold =
    match roundtrip reader fd (optimize ~id:1 graph) with
    | Protocol.Result { cached; body; _ } ->
        checkb "first answer is cold" false cached;
        body
    | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)
  in
  (match Protocol.decode_outcome cold with
  | Ok o ->
      checkb "outcome carries a graph" true (String.length o.Protocol.graph > 0);
      checkb "outcome carries stats JSON" true
        (String.length o.Protocol.stats_json > 0)
  | Error m -> Alcotest.fail ("cold outcome decode: " ^ m));
  (* same fingerprint from a different client encoding: fresh symbols
     differ but the cache key must not *)
  let graph2 = encoded_test_graph () in
  (match roundtrip reader fd (optimize ~id:2 graph2) with
  | Protocol.Result { cached; body; _ } ->
      checkb "second answer is warm" true cached;
      checkb "warm body byte-identical to cold" true (String.equal body cold)
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  match roundtrip reader fd (Protocol.Stats { id = 3 }) with
  | Protocol.Stats_report { stats; _ } ->
      checki "one cache hit" 1 stats.Protocol.cache_hits;
      checki "one cache miss" 1 stats.Protocol.cache_misses;
      checki "two served" 2 stats.Protocol.served
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

let test_server_bad_requests_survive () =
  with_server "bad" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  (* a syntactically valid frame whose payload is not a request *)
  write_all fd (Protocol.frame "not a request at all");
  (match read_response reader fd with
  | Protocol.Bad_request _ -> ()
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  (* unknown engine: structured rejection, not a dropped connection *)
  let opts = { Protocol.default_options with Protocol.engine = "quantum" } in
  (match roundtrip reader fd (optimize ~id:5 ~options:opts (encoded_test_graph ())) with
  | Protocol.Bad_request { id; reason } ->
      checki "rejection echoes the id" 5 id;
      checkb "reason names the engine" true
        (String.length reason > 0)
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  (* undecodable graph bytes *)
  (match roundtrip reader fd (optimize ~id:6 "garbage graph") with
  | Protocol.Bad_request { id; _ } -> checki "rejection echoes the id" 6 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  (* the same connection still serves good requests *)
  match roundtrip reader fd (optimize ~id:7 (encoded_test_graph ())) with
  | Protocol.Result { id; _ } -> checki "request after rejects answered" 7 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

let test_server_fault_injection_contained () =
  with_server "faults" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  (* every instantiation fails: the pass runs, rewrites roll back, and
     the response is a structured Result, not a dropped connection *)
  let opts =
    {
      Protocol.default_options with
      Protocol.fault_seed = 11;
      fault_rate = 1.0;
      fault_points = [ "instantiate-fail" ];
    }
  in
  (match roundtrip reader fd (optimize ~id:1 ~options:opts (encoded_test_graph ())) with
  | Protocol.Result { cached; body; _ } -> (
      checkb "fault run is cold" false cached;
      match Protocol.decode_outcome body with
      | Ok o -> checkb "no fatal under quarantine policy" true (o.Protocol.fatal = None)
      | Error m -> Alcotest.fail ("outcome decode: " ^ m))
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  (* unknown fault point: rejected, connection lives *)
  let bad =
    { opts with Protocol.fault_points = [ "meteor-strike" ] }
  in
  (match roundtrip reader fd (optimize ~id:2 ~options:bad (encoded_test_graph ())) with
  | Protocol.Bad_request { id; _ } -> checki "rejection echoes the id" 2 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  (* and a clean request on the same connection still succeeds *)
  match roundtrip reader fd (optimize ~id:3 (encoded_test_graph ())) with
  | Protocol.Result { id; _ } -> checki "clean request answered" 3 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

let test_server_sheds_past_queue_bound () =
  with_server ~workers:1 ~queue_bound:1 "shed" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  let graph = encoded_test_graph () in
  let n = 32 in
  let burst = Buffer.create 4096 in
  for i = 0 to n - 1 do
    (* distinct leaf names -> distinct fingerprints -> no warm shortcut *)
    let g = if i = 0 then graph else encoded_test_graph ~name:(Printf.sprintf "x%d" i) () in
    Buffer.add_string burst
      (Protocol.frame (Protocol.encode_request (optimize ~id:i g)))
  done;
  write_all fd (Buffer.contents burst);
  let results = ref 0 and sheds = ref 0 in
  for _ = 1 to n do
    match read_response reader fd with
    | Protocol.Result _ -> incr results
    | Protocol.Overloaded _ -> incr sheds
    | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)
  done;
  checki "every request answered" n (!results + !sheds);
  checkb "some requests served" true (!results > 0);
  checkb "admission control shed past the bound" true (!sheds > 0);
  (* the connection remains usable after shedding *)
  match roundtrip reader fd (optimize ~id:999 graph) with
  | Protocol.Result _ | Protocol.Overloaded _ -> ()
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

let test_server_cache_eviction_bound () =
  (* a cache too small for two outcomes: the second insert evicts the
     first; both still answer, and Stats shows the eviction *)
  with_server ~cache_bytes:2048 "evict" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  let ask id name =
    match roundtrip reader fd (optimize ~id (encoded_test_graph ~name ())) with
    | Protocol.Result _ -> ()
    | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)
  in
  for i = 0 to 7 do
    ask i (Printf.sprintf "leaf%d" i)
  done;
  match roundtrip reader fd (Protocol.Stats { id = 100 }) with
  | Protocol.Stats_report { stats; _ } ->
      checkb "evictions happened" true (stats.Protocol.cache_evictions > 0);
      checkb "cache stayed within its bound" true
        (stats.Protocol.cache_bytes <= 2048)
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

(* ------------------------------------------------------------------ *)
(* Supervision, watchdog, drain, health                                *)
(* ------------------------------------------------------------------ *)

let test_server_health_probe () =
  with_server "health" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  match roundtrip reader fd (Protocol.Health { id = 42 }) with
  | Protocol.Health_report { id; health } ->
      checki "echoes the id" 42 id;
      checks "status ok" "ok" health.Protocol.status;
      checki "all workers alive" 2 health.Protocol.workers_alive;
      checki "worker total" 2 health.Protocol.workers_total;
      checki "no restarts yet" 0 health.Protocol.restarts;
      checki "nothing poisoned" 0 health.Protocol.poisoned;
      checki "nothing in flight" 0 health.Protocol.inflight;
      checkb "uptime sane" true (health.Protocol.uptime_s >= 0.)
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

(* The supervision tentpole end-to-end: a poison-pill request crashes a
   worker, is retried, crashes the replacement's sibling, and comes back
   as a structured [Worker_crashed] — while the supervisor restarts the
   dead workers and the very same connection keeps serving. *)
let test_server_worker_crash_restart () =
  with_server "crash" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  let opts =
    {
      Protocol.default_options with
      Protocol.fault_seed = 3;
      fault_rate = 1.0;
      fault_points = [ "worker-crash" ];
    }
  in
  (match
     roundtrip reader fd (optimize ~id:1 ~options:opts (encoded_test_graph ()))
   with
  | Protocol.Worker_crashed { id; reason } ->
      checki "poison pill echoes the id" 1 id;
      checkb "reason is populated" true (String.length reason > 0)
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  (* same connection, clean request: supervision must have restarted the
     crashed workers *)
  (match roundtrip reader fd (optimize ~id:2 (encoded_test_graph ())) with
  | Protocol.Result { id; _ } -> checki "post-crash request served" 2 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  match roundtrip reader fd (Protocol.Health { id = 3 }) with
  | Protocol.Health_report { health; _ } ->
      checkb "restarts recorded" true (health.Protocol.restarts >= 1);
      checki "one poisoned job" 1 health.Protocol.poisoned;
      checki "workers recovered" 2 health.Protocol.workers_alive
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

(* Restart budget exhausted: the lone worker dies, cannot come back, the
   stranded job is failed closed and later submissions shed. *)
let test_server_restart_budget_exhausted () =
  with_server ~workers:1 ~restart_budget:0 "budget" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  let opts =
    {
      Protocol.default_options with
      Protocol.fault_seed = 5;
      fault_rate = 1.0;
      fault_points = [ "worker-crash" ];
    }
  in
  (match
     roundtrip reader fd (optimize ~id:1 ~options:opts (encoded_test_graph ()))
   with
  | Protocol.Worker_crashed { id; _ } -> checki "job failed closed" 1 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  (* no worker left, no budget: admission refuses rather than accepting
     work that can never run *)
  (match roundtrip reader fd (optimize ~id:2 (encoded_test_graph ())) with
  | Protocol.Overloaded { id } -> checki "submission shed" 2 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  match roundtrip reader fd (Protocol.Health { id = 3 }) with
  | Protocol.Health_report { health; _ } ->
      checki "no workers alive" 0 health.Protocol.workers_alive;
      checki "no restarts granted" 0 health.Protocol.restarts
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

(* The deadline watchdog: a stalled job is reaped with
   [Deadline_exceeded] near the configured budget, not after the stall
   ends — and the worker's late completion is discarded, not re-sent. *)
let test_server_deadline_watchdog () =
  with_server ~job_deadline_s:(Some 0.2) "watchdog" @@ fun fd ->
  let reader = Protocol.Reader.create () in
  let opts =
    {
      Protocol.default_options with
      Protocol.fault_seed = 7;
      fault_rate = 1.0;
      fault_points = [ "serve-stall" ];
    }
  in
  let t0 = Unix.gettimeofday () in
  (match
     roundtrip reader fd (optimize ~id:1 ~options:opts (encoded_test_graph ()))
   with
  | Protocol.Deadline_exceeded { id; elapsed_s } ->
      checki "reap echoes the id" 1 id;
      checkb "elapsed reflects the deadline" true (elapsed_s >= 0.2);
      (* the stall is 0.75 s; the reap must not have waited it out *)
      checkb "reaped before the stall ended" true
        (Unix.gettimeofday () -. t0 < 0.7)
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  (* the stalled worker eventually finishes its discarded job and the
     connection serves on *)
  match roundtrip reader fd (optimize ~id:2 (encoded_test_graph ())) with
  | Protocol.Result { id; _ } -> checki "post-reap request served" 2 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

(* Graceful drain: with a job in flight, the drain hook flips; new work
   is answered [Draining], health reports draining, the in-flight job
   still completes, and the server exits on its own — no stop signal. *)
let test_server_graceful_drain () =
  let socket_path = test_socket "drain" in
  let ready = Atomic.make false in
  let drain = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          ~drain:(fun () -> Atomic.get drain)
          (test_config ~drain_timeout_s:5. socket_path))
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  checkb "server came up" true (Atomic.get ready);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let reader = Protocol.Reader.create () in
  (* hold the server open across the drain with a stalled in-flight job *)
  let stall =
    {
      Protocol.default_options with
      Protocol.fault_seed = 9;
      fault_rate = 1.0;
      fault_points = [ "serve-stall" ];
    }
  in
  write_all fd
    (Protocol.frame
       (Protocol.encode_request
          (optimize ~id:1 ~options:stall (encoded_test_graph ()))));
  Unix.sleepf 0.15;
  (* a worker holds job 1 now *)
  Atomic.set drain true;
  Unix.sleepf 0.3;
  (* the loop has noticed: new optimize work is refused... *)
  write_all fd
    (Protocol.frame
       (Protocol.encode_request (optimize ~id:2 (encoded_test_graph ()))));
  (* ...while health is still answered *)
  write_all fd
    (Protocol.frame (Protocol.encode_request (Protocol.Health { id = 3 })));
  let seen_draining = ref false
  and seen_health = ref false
  and seen_result = ref false in
  for _ = 1 to 3 do
    match read_response reader fd with
    | Protocol.Draining { id } ->
        checki "draining echoes the id" 2 id;
        seen_draining := true
    | Protocol.Health_report { id; health } ->
        checki "health echoes the id" 3 id;
        checks "status draining" "draining" health.Protocol.status;
        seen_health := true
    | Protocol.Result { id; _ } ->
        checki "the in-flight job still completed" 1 id;
        seen_result := true
    | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)
  done;
  checkb "optimize during drain answered Draining" true !seen_draining;
  checkb "health during drain answered" true !seen_health;
  checkb "in-flight job served during drain" true !seen_result;
  (* the server exits by itself once in-flight work is gone *)
  match Domain.join srv with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("drain exit: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Startup probe                                                       *)
(* ------------------------------------------------------------------ *)

let test_server_stale_socket_reclaimed () =
  let socket_path = test_socket "stale" in
  (* leave a stale socket file behind, as a crashed server would: bound,
     never unlinked, nobody listening *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.close fd;
  checkb "stale socket file exists" true (Sys.file_exists socket_path);
  (* the server must reclaim it and come up *)
  with_server "stale" @@ fun live_fd ->
  let reader = Protocol.Reader.create () in
  match roundtrip reader live_fd (Protocol.Health { id = 1 }) with
  | Protocol.Health_report _ -> ()
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

let test_server_live_socket_refused () =
  with_server_path "live" @@ fun socket_path ->
  (* a second server on the same path must refuse with a structured
     error — and must NOT unlink the live server's socket *)
  (match Server.run ~stop:(fun () -> true) (test_config socket_path) with
  | Error msg ->
      checkb "error names the conflict" true
        (String.length msg > 0
        && String.lowercase_ascii msg |> fun m ->
           let has sub =
             let n = String.length m and k = String.length sub in
             let rec go i = i + k <= n && (String.sub m i k = sub || go (i + 1)) in
             go 0
           in
           has "already" || has "in use")
  | Ok () -> Alcotest.fail "second server started on a live socket");
  (* the first server is unharmed *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let reader = Protocol.Reader.create () in
  match roundtrip reader fd (Protocol.Health { id = 1 }) with
  | Protocol.Health_report _ -> ()
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

let test_server_nonsocket_path_refused () =
  let path = test_socket "notsock" in
  let oc = open_out path in
  output_string oc "precious user data";
  close_out oc;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (match Server.run ~stop:(fun () -> true) (test_config path) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "server started over a regular file");
  (* and the file was not unlinked *)
  checkb "non-socket file untouched" true (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Adversarial wire input                                              *)
(* ------------------------------------------------------------------ *)

(* A request frame truncated at every byte boundary, each on its own
   connection that then vanishes: the server must survive every prefix
   and keep serving. *)
let test_server_truncation_every_boundary () =
  with_server "trunc" @@ fun fd ->
  let socket_path = test_socket "trunc" in
  let frame =
    Protocol.frame
      (Protocol.encode_request (optimize ~id:1 (encoded_test_graph ())))
  in
  let n = String.length frame in
  for cut = 0 to n - 1 do
    let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect c (Unix.ADDR_UNIX socket_path) with
    | () ->
        (try write_all c (String.sub frame 0 cut)
         with Unix.Unix_error _ -> ());
        (try Unix.close c with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close c with Unix.Unix_error _ -> ());
        Alcotest.failf "connect refused at cut %d: %s" cut
          (Unix.error_message e))
  done;
  (* the server took no damage from any prefix *)
  let reader = Protocol.Reader.create () in
  match roundtrip reader fd (optimize ~id:2 (encoded_test_graph ())) with
  | Protocol.Result { id; _ } -> checki "server survived every prefix" 2 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

(* Clients that send a whole request and hang up before the answer: the
   worker's write hits EPIPE on a dead peer. No crash, no fd leak that
   would poison later connections, and stats still count the work. *)
let test_server_client_vanishes_before_answer () =
  with_server "vanish" @@ fun fd ->
  let socket_path = test_socket "vanish" in
  for i = 0 to 7 do
    let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect c (Unix.ADDR_UNIX socket_path);
    let g = encoded_test_graph ~name:(Printf.sprintf "gone%d" i) () in
    write_all c (Protocol.frame (Protocol.encode_request (optimize ~id:i g)));
    Unix.close c
  done;
  (* give the workers time to compute into the dead sockets *)
  Unix.sleepf 0.5;
  let reader = Protocol.Reader.create () in
  (match roundtrip reader fd (optimize ~id:100 (encoded_test_graph ())) with
  | Protocol.Result { id; _ } -> checki "server survived EPIPE writes" 100 id
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r));
  match roundtrip reader fd (Protocol.Health { id = 101 }) with
  | Protocol.Health_report { health; _ } ->
      (* every admitted job must have been retired: no leaked pending
         refcounts masquerading as in-flight work *)
      checki "no stuck in-flight jobs" 0 health.Protocol.inflight
  | r -> Alcotest.failf "unexpected response %d" (Protocol.response_id r)

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let test_chaos_property () =
  with_server_path ~workers:2 "chaos" @@ fun socket_path ->
  let r = Chaos.run ~schedules:25 ~seed:11 ~socket:socket_path () in
  (match r.Chaos.violations with
  | [] -> ()
  | v ->
      Alcotest.failf "%d chaos violation(s):\n  %s" (List.length v)
        (String.concat "\n  " v));
  checkb "wire faults were exercised" true (r.Chaos.faults > 0);
  checkb "clean requests were served" true (r.Chaos.ok > 0);
  checkb "crash drills ran" true (r.Chaos.crash_drills > 0);
  checkb "bursts ran" true (r.Chaos.bursts > 0)

(* ------------------------------------------------------------------ *)
(* Load: latency percentiles                                           *)
(* ------------------------------------------------------------------ *)

let checkf msg = Alcotest.(check (float 0.0)) msg

(* Ceiling-based nearest rank: the reported percentile is an observed
   latency that at least p%% of samples do not exceed. The old truncating
   rank under-reported the tail — p99 of 100 samples picked index 98. *)
let test_percentile_known_arrays () =
  let hundred = Array.init 100 (fun i -> float_of_int (i + 1)) in
  checkf "p50 of 1..100" 51. (Load.percentile hundred 50.);
  checkf "p95 of 1..100" 96. (Load.percentile hundred 95.);
  checkf "p99 of 1..100" 100. (Load.percentile hundred 99.);
  checkf "p0 is the min" 1. (Load.percentile hundred 0.);
  checkf "p100 is the max" 100. (Load.percentile hundred 100.);
  let four = [| 10.; 20.; 30.; 40. |] in
  checkf "p25 of four" 20. (Load.percentile four 25.);
  checkf "p50 of four" 30. (Load.percentile four 50.);
  checkf "p95 of four" 40. (Load.percentile four 95.);
  checkf "p99 of four" 40. (Load.percentile four 99.)

let test_percentile_degenerate () =
  checkf "empty" 0. (Load.percentile [||] 99.);
  let one = [| 7.5 |] in
  checkf "singleton p50" 7.5 (Load.percentile one 50.);
  checkf "singleton p99" 7.5 (Load.percentile one 99.);
  (* ranks never escape the array even for out-of-range p *)
  let two = [| 1.; 2. |] in
  checkf "p > 100 clamps to max" 2. (Load.percentile two 250.);
  checkf "p < 0 clamps to min" 1. (Load.percentile two (-10.))

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "hit and miss accounting" `Quick
            test_cache_hit_miss;
          Alcotest.test_case "LRU eviction respects the byte bound" `Quick
            test_cache_eviction_lru;
          Alcotest.test_case "replacement releases the old charge" `Quick
            test_cache_replace_releases_charge;
          Alcotest.test_case "oversized values are skipped" `Quick
            test_cache_oversized_skipped;
          Alcotest.test_case "concurrent stress: no torn entries" `Quick
            test_cache_concurrent_stress;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_protocol_response_roundtrip;
          Alcotest.test_case "outcome round-trip" `Quick
            test_protocol_outcome_roundtrip;
          Alcotest.test_case "decode is total on mangled bytes" `Quick
            test_protocol_decode_total;
          Alcotest.test_case "reader survives any frame split" `Quick
            test_reader_any_split;
          Alcotest.test_case "oversize frames are a sticky error" `Quick
            test_reader_oversize_sticky;
          Alcotest.test_case "length-varint overflow rejected pre-allocation"
            `Quick test_reader_varint_overflow_rejected;
        ] );
      ( "server",
        [
          Alcotest.test_case "warm response byte-identical to cold" `Quick
            test_server_cold_warm_identical;
          Alcotest.test_case "bad requests answered, connection survives"
            `Quick test_server_bad_requests_survive;
          Alcotest.test_case "injected faults are contained" `Quick
            test_server_fault_injection_contained;
          Alcotest.test_case "admission control sheds past the queue bound"
            `Quick test_server_sheds_past_queue_bound;
          Alcotest.test_case "result-cache eviction respects its bound" `Quick
            test_server_cache_eviction_bound;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "health probe" `Quick test_server_health_probe;
          Alcotest.test_case "worker crash, restart, poison pill" `Quick
            test_server_worker_crash_restart;
          Alcotest.test_case "restart budget exhaustion fails closed" `Quick
            test_server_restart_budget_exhausted;
          Alcotest.test_case "deadline watchdog reaps stuck jobs" `Quick
            test_server_deadline_watchdog;
          Alcotest.test_case "graceful drain" `Quick test_server_graceful_drain;
        ] );
      ( "startup",
        [
          Alcotest.test_case "stale socket reclaimed" `Quick
            test_server_stale_socket_reclaimed;
          Alcotest.test_case "live socket refused" `Quick
            test_server_live_socket_refused;
          Alcotest.test_case "non-socket path refused, file untouched" `Quick
            test_server_nonsocket_path_refused;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "truncation at every byte boundary" `Quick
            test_server_truncation_every_boundary;
          Alcotest.test_case "client vanishes before the answer" `Quick
            test_server_client_vanishes_before_answer;
        ] );
      ( "chaos",
        [ Alcotest.test_case "wire-fault property" `Slow test_chaos_property ] );
      ( "load",
        [
          Alcotest.test_case "percentiles pinned on known arrays" `Quick
            test_percentile_known_arrays;
          Alcotest.test_case "percentile degenerate inputs" `Quick
            test_percentile_degenerate;
        ] );
    ]
