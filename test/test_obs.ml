(* Tests for the observability layer (lib/obs) and the three bugfixes that
   ride with it: fuel exhaustion is surfaced instead of silently collapsed
   into "no match", duplicate pattern names are rejected at Program
   construction, and Graph.replace/Graph.validate handle dead users and
   input cycles correctly. *)

open Pypm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let env () = Std_ops.make ()

let fresh_graph () =
  let e = env () in
  (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())

let f32 shape = Ty.make Dtype.F32 shape

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Bugfix 1: out-of-fuel is not a clean no-match                       *)
(* ------------------------------------------------------------------ *)

let test_fuel_exhausted_surfaces () =
  let e, g = (Option.get (Zoo.find "bert-tiny")).Zoo.build () in
  Obs.ring_reset ();
  let stats = Pass.run ~fuel:5 (Corpus.both_program e.Std_ops.sg) g in
  checkb "stats.fuel_exhausted > 0" true (stats.Pass.fuel_exhausted > 0);
  checkb "some pattern records fuel exhaustion" true
    (List.exists
       (fun (ps : Pass.pattern_stats) -> ps.Pass.fuel_exhausted > 0)
       stats.Pass.per_pattern);
  checki "total equals the per-pattern sum" stats.Pass.fuel_exhausted
    (List.fold_left
       (fun acc (ps : Pass.pattern_stats) -> acc + ps.Pass.fuel_exhausted)
       0 stats.Pass.per_pattern);
  (* the always-on ring buffer saw the typed events *)
  checkb "ring buffer recorded Fuel_exhausted events" true
    (List.exists
       (fun (ev : Obs.event) ->
         match ev.Obs.kind with Obs.Fuel_exhausted _ -> true | _ -> false)
       (Obs.recent ()))

let test_ample_fuel_reports_none () =
  let e, g = (Option.get (Zoo.find "bert-tiny")).Zoo.build () in
  let stats = Pass.run (Corpus.both_program e.Std_ops.sg) g in
  checki "no fuel exhaustion at the default bound" 0 stats.Pass.fuel_exhausted

(* ------------------------------------------------------------------ *)
(* Bugfix 2: duplicate pattern names are rejected                      *)
(* ------------------------------------------------------------------ *)

let test_duplicate_names_rejected () =
  let e = env () in
  let raised =
    try
      ignore
        (Program.make ~sg:e.Std_ops.sg [ Corpus.relu_chain; Corpus.relu_chain ]);
      false
    with Invalid_argument msg ->
      checkb "error names the duplicate" true (contains msg "duplicate");
      true
  in
  checkb "Program.make raises on duplicate names" true raised;
  (* unique names still construct *)
  let p = Program.make ~sg:e.Std_ops.sg [ Corpus.relu_chain ] in
  checki "singleton ok" 1 (List.length (Program.pattern_names p))

(* ------------------------------------------------------------------ *)
(* Bugfix 3: replace ignores dead users; validate flags input cycles   *)
(* ------------------------------------------------------------------ *)

let test_replace_ignores_dead_users () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 4 ]) in
  let b = Graph.add g Std_ops.relu [ x ] in
  Graph.set_outputs g [ b ];
  (* a dead user of [b], and a replacement reachable from that dead user:
     the old implementation cycle-checked dead users and raised here *)
  let d = Graph.add g Std_ops.relu [ b ] in
  let n = Graph.add g Std_ops.relu [ d ] in
  Graph.replace g ~old_root:b ~new_root:n;
  checkb "outputs rewired" true
    (List.exists (fun (o : Graph.node) -> o.Graph.id = n.Graph.id)
       (Graph.outputs g));
  checki "graph still validates" 0 (List.length (Graph.validate g))

let test_validate_flags_input_cycle () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 4 ]) in
  let a = Graph.add g Std_ops.relu [ x ] in
  let b = Graph.add g Std_ops.relu [ a ] in
  Graph.set_outputs g [ b ];
  checki "acyclic graph validates" 0 (List.length (Graph.validate g));
  (* manufacture a cycle: a's input becomes b, so a -> b -> a *)
  Graph.unsafe_set_inputs a [ b ];
  let errs = Graph.validate g in
  checkb "cycle detected" true (List.exists (fun m -> contains m "cycle") errs)

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_buffer_wraps () =
  Obs.set_ring_capacity 8;
  for i = 1 to 20 do
    Obs.emit (Obs.Iteration { n = i })
  done;
  let seen =
    List.filter_map
      (fun (ev : Obs.event) ->
        match ev.Obs.kind with Obs.Iteration { n } -> Some n | _ -> None)
      (Obs.recent ())
  in
  checki "capacity bounds the ring" 8 (List.length seen);
  Alcotest.(check (list int))
    "oldest first, newest kept" [ 13; 14; 15; 16; 17; 18; 19; 20 ] seen;
  Obs.set_ring_capacity 4096

(* ------------------------------------------------------------------ *)
(* Aggregator agrees with the pass statistics                          *)
(* ------------------------------------------------------------------ *)

let test_agg_matches_stats () =
  let e, g = (Option.get (Zoo.find "bert-tiny")).Zoo.build () in
  let agg = Obs.Agg.create () in
  let stats =
    Obs.with_sink (Obs.Agg.sink agg) (fun () ->
        Pass.run ~engine:Pass.Index (Corpus.both_program e.Std_ops.sg) g)
  in
  List.iter
    (fun (ps : Pass.pattern_stats) ->
      match Obs.Agg.find agg ps.Pass.ps_name with
      | None -> checki (ps.Pass.ps_name ^ ": no events means no attempts") 0 ps.Pass.attempts
      | Some a ->
          checki (ps.Pass.ps_name ^ ": attempts") a.Obs.Agg.attempts
            ps.Pass.attempts;
          checki (ps.Pass.ps_name ^ ": matches") a.Obs.Agg.matches
            ps.Pass.matches;
          checki (ps.Pass.ps_name ^ ": rewrites") a.Obs.Agg.rewrites
            ps.Pass.rewrites)
    stats.Pass.per_pattern

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

let provenance_key (s : Obs.Provenance.step) =
  Printf.sprintf "%s/%s %d->%d" s.Obs.Provenance.pattern s.Obs.Provenance.rule
    s.Obs.Provenance.matched_root s.Obs.Provenance.replacement_root

let test_provenance_replays_the_pass () =
  let run engine =
    let e, g = (Option.get (Zoo.find "bert-mini")).Zoo.build () in
    Pass.run ~engine (Corpus.both_program e.Std_ops.sg) g
  in
  let s_naive = run Pass.Naive in
  let s_plan = run Pass.Plan in
  checki "one step per rewrite (naive)" s_naive.Pass.total_rewrites
    (List.length s_naive.Pass.provenance);
  checki "one step per rewrite (plan)" s_plan.Pass.total_rewrites
    (List.length s_plan.Pass.provenance);
  List.iteri
    (fun i (s : Obs.Provenance.step) ->
      checki "steps are in firing order" i s.Obs.Provenance.seq)
    s_naive.Pass.provenance;
  Alcotest.(check (list string))
    "plan replays the same rewrite sequence as naive"
    (List.map provenance_key s_naive.Pass.provenance)
    (List.map provenance_key s_plan.Pass.provenance)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

(* A tiny JSON syntax checker: enough to guarantee the writer emits a
   well-formed object Perfetto's parser will accept structurally. *)
let json_ok s =
  let n = String.length s in
  let fail = ref false in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let rec value () =
    if !fail then ()
    else (
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> str ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | _ -> fail := true)
  and literal w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail := true
  and number () =
    let start = !pos in
    while
      (match peek () with
      | Some ('-' | '+' | '.' | 'e' | 'E' | '0' .. '9') -> true
      | _ -> false)
    do
      advance ()
    done;
    if !pos = start then fail := true
  and str () =
    expect '"';
    let fin = ref false in
    while (not !fin) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '"' ->
          advance ();
          fin := true
      | Some '\\' ->
          advance ();
          advance ()
      | Some _ -> advance ()
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let fin = ref false in
      while (not !fin) && not !fail do
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
            advance ();
            fin := true
        | _ -> fail := true
      done
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let fin = ref false in
      while (not !fin) && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
            advance ();
            fin := true
        | _ -> fail := true
      done
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_chrome_trace_is_valid_json () =
  let e, g = (Option.get (Zoo.find "bert-tiny")).Zoo.build () in
  let c = Obs.Collector.create () in
  ignore
    (Obs.with_sink (Obs.Collector.sink c) (fun () ->
         Pass.run ~engine:Pass.Plan (Corpus.both_program e.Std_ops.sg) g));
  checkb "captured events" true (Obs.Collector.length c > 0);
  let json = Obs.Chrome.to_string (Obs.Collector.events c) in
  checkb "well-formed JSON" true (json_ok json);
  checkb "has a traceEvents array" true (contains json "\"traceEvents\"");
  (* escaping: a name with quotes/newlines still yields valid JSON *)
  let weird =
    [
      {
        Obs.ts = 0.;
        dur = 0.001;
        node = 3;
        kind = Obs.Rule_fired { pattern = "p\"q\n"; rule = "r\\s"; replacement = 7 };
      };
    ]
  in
  checkb "escapes special characters" true (json_ok (Obs.Chrome.to_string weird));
  checkb "empty capture is still valid" true (json_ok (Obs.Chrome.to_string []))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "fuel",
        [
          Alcotest.test_case "starved run surfaces fuel_exhausted" `Quick
            test_fuel_exhausted_surfaces;
          Alcotest.test_case "default fuel reports none" `Quick
            test_ample_fuel_reports_none;
        ] );
      ( "program",
        [
          Alcotest.test_case "duplicate names rejected" `Quick
            test_duplicate_names_rejected;
        ] );
      ( "graph",
        [
          Alcotest.test_case "replace ignores dead users" `Quick
            test_replace_ignores_dead_users;
          Alcotest.test_case "validate flags an input cycle" `Quick
            test_validate_flags_input_cycle;
        ] );
      ( "ring",
        [ Alcotest.test_case "wraps and keeps newest" `Quick test_ring_buffer_wraps ] );
      ( "agg",
        [
          Alcotest.test_case "aggregator agrees with pass stats" `Quick
            test_agg_matches_stats;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "provenance replays the pass" `Quick
            test_provenance_replays_the_pass;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "trace export is valid JSON" `Quick
            test_chrome_trace_is_valid_json;
        ] );
    ]
