(* Intra-pass parallelism: the Team fork/join primitive, and the sharded
   pass's determinism guarantee — Pass.run ~domains:k must produce the
   same final graph fingerprint, rewrite count and provenance order as
   the sequential pass, on every engine. *)

open Pypm

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Team                                                                *)
(* ------------------------------------------------------------------ *)

let test_team_run_order () =
  let t = Team.create ~shards:4 in
  Fun.protect ~finally:(fun () -> Team.shutdown t) @@ fun () ->
  checki "shards" 4 (Team.shards t);
  let r = Team.run t (fun i -> i * 10) in
  Alcotest.(check (list int)) "shard order" [ 0; 10; 20; 30 ] (Array.to_list r);
  (* reusable round after round, results stay indexed by shard *)
  for round = 1 to 5 do
    let r = Team.run t (fun i -> (round * 100) + i) in
    Array.iteri (fun i v -> checki "round result" ((round * 100) + i) v) r
  done

let test_team_single_shard () =
  let t = Team.create ~shards:1 in
  let r = Team.run t (fun i -> i + 41) in
  Alcotest.(check (list int)) "degenerate" [ 41 ] (Array.to_list r);
  Team.shutdown t;
  Team.shutdown t (* idempotent *)

exception Boom of int

let test_team_exception () =
  let t = Team.create ~shards:3 in
  Fun.protect ~finally:(fun () -> Team.shutdown t) @@ fun () ->
  let finished = Array.make 3 false in
  (match
     Team.run t (fun i ->
         if i = 1 then raise (Boom i);
         finished.(i) <- true)
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ());
  (* the round joined fully: the other shards ran to completion *)
  checkb "shard 0 finished" true finished.(0);
  checkb "shard 2 finished" true finished.(2);
  (* and the team survives for the next round *)
  let r = Team.run t (fun i -> i) in
  checki "still alive" 3 (Array.length r)

let test_team_shutdown_rejects_run () =
  let t = Team.create ~shards:2 in
  Team.shutdown t;
  match Team.run t (fun i -> i) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Sharded pass = sequential pass                                      *)
(* ------------------------------------------------------------------ *)

let provenance_digest (s : Pass.stats) =
  List.map
    (fun (p : Obs.Provenance.step) ->
      ( p.Obs.Provenance.seq,
        p.Obs.Provenance.pattern,
        p.Obs.Provenance.rule,
        p.Obs.Provenance.matched_root,
        p.Obs.Provenance.replacement_root ))
    (Pass.provenance s)

let engines = [ Pass.Naive; Pass.Index; Pass.Plan ]

let test_run_parity () =
  List.iter
    (fun (m : Zoo.model) ->
      List.iter
        (fun engine ->
          let run domains =
            let env, g = m.Zoo.build () in
            let stats =
              Pass.run ~engine ~domains (Corpus.both_program env.Std_ops.sg) g
            in
            (stats, Fuzz.fingerprint g)
          in
          let s1, f1 = run 1 in
          List.iter
            (fun domains ->
              let sk, fk = run domains in
              if fk <> f1 then
                Alcotest.failf "%s/%s: fingerprint differs at domains=%d"
                  m.Zoo.mname (Pass.engine_name engine) domains;
              if sk.Pass.total_rewrites <> s1.Pass.total_rewrites then
                Alcotest.failf "%s/%s: rewrites differ at domains=%d (%d vs %d)"
                  m.Zoo.mname (Pass.engine_name engine) domains
                  sk.Pass.total_rewrites s1.Pass.total_rewrites;
              if provenance_digest sk <> provenance_digest s1 then
                Alcotest.failf "%s/%s: provenance differs at domains=%d"
                  m.Zoo.mname (Pass.engine_name engine) domains;
              checki "domains recorded" domains sk.Pass.domains_used;
              checkb "fixpoint" true sk.Pass.reached_fixpoint)
            [ 2; 4 ])
        engines)
    [
      Option.get (Zoo.find "bert-mini");
      Option.get (Zoo.find "gpt2-micro");
      Option.get (Zoo.find "resnet10-ish");
      Option.get (Zoo.find "clip-pico");
    ]

(* The full-program corpus exercises guards, fallback patterns and
   rollbacks; parity must hold there too. *)
let test_run_parity_full_corpus () =
  let m = Option.get (Zoo.find "bert-mini") in
  List.iter
    (fun engine ->
      let run domains =
        let env, g = m.Zoo.build () in
        let stats =
          Pass.run ~engine ~domains (Corpus.full_program env.Std_ops.sg) g
        in
        (stats.Pass.total_rewrites, Fuzz.fingerprint g, provenance_digest stats)
      in
      let r1 = run 1 and r4 = run 4 in
      if r1 <> r4 then
        Alcotest.failf "full corpus: domains=4 diverged on %s"
          (Pass.engine_name engine))
    engines

(* match_only has no firing short-circuit, so the parallel split does
   identical matching work: per-pattern totals must be exactly equal. *)
let test_match_only_parity () =
  let m = Option.get (Zoo.find "gpt2-micro") in
  List.iter
    (fun engine ->
      let measure domains =
        let env, g = m.Zoo.build () in
        Pass.match_only ~engine ~domains (Corpus.both_program env.Std_ops.sg) g
      in
      let s1 = measure 1 and s4 = measure 4 in
      checki "nodes visited" s1.Pass.nodes_visited s4.Pass.nodes_visited;
      List.iter2
        (fun (a : Pass.pattern_stats) (b : Pass.pattern_stats) ->
          checki ("matches " ^ a.Pass.ps_name) a.Pass.matches b.Pass.matches;
          checki ("attempts " ^ a.Pass.ps_name) a.Pass.attempts b.Pass.attempts;
          checki ("skipped " ^ a.Pass.ps_name) a.Pass.skipped b.Pass.skipped;
          checki
            ("plan_pruned " ^ a.Pass.ps_name)
            a.Pass.plan_pruned b.Pass.plan_pruned)
        s1.Pass.per_pattern s4.Pass.per_pattern)
    engines

(* An active fault schedule consumes its stream in query order, which
   sharding would permute: the pass must fall back to one domain. *)
let test_inject_forces_sequential () =
  let m = Option.get (Zoo.find "bert-tiny") in
  let env, g = m.Zoo.build () in
  let inject =
    Pypm.Resilience.Inject.seeded ~seed:42 ~rate:0.5 ()
  in
  let stats =
    Pass.run ~engine:Pass.Plan ~domains:4 ~inject
      (Corpus.both_program env.Std_ops.sg)
      g
  in
  checki "forced sequential" 1 stats.Pass.domains_used

let test_stats_json_domains () =
  let m = Option.get (Zoo.find "bert-tiny") in
  let env, g = m.Zoo.build () in
  let stats =
    Pass.run ~engine:Pass.Plan ~domains:2 (Corpus.both_program env.Std_ops.sg) g
  in
  let json = Pass.stats_json stats in
  checkb "stats_json carries domains" true
    (let needle = "\"domains\":2" in
     let rec find i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "parallel"
    [
      ( "team",
        [
          Alcotest.test_case "run order + reuse" `Quick test_team_run_order;
          Alcotest.test_case "single shard" `Quick test_team_single_shard;
          Alcotest.test_case "task exception" `Quick test_team_exception;
          Alcotest.test_case "shutdown rejects run" `Quick
            test_team_shutdown_rejects_run;
        ] );
      ( "pass-parity",
        [
          Alcotest.test_case "run: zoo x engines x domains" `Quick
            test_run_parity;
          Alcotest.test_case "run: full corpus" `Quick
            test_run_parity_full_corpus;
          Alcotest.test_case "match_only: identical totals" `Quick
            test_match_only_parity;
          Alcotest.test_case "inject forces sequential" `Quick
            test_inject_forces_sequential;
          Alcotest.test_case "stats_json domains" `Quick
            test_stats_json_domains;
        ] );
    ]
