(* Frozen regressions for the crash classes the differential fuzzer
   (lib/fuzz) guards against, plus deterministic smoke runs of the fuzzer
   itself. Each lexer/codec case here is a concrete input that used to
   escape as an uncaught exception (Failure from the stdlib conversion
   functions, Invalid_argument from the sign-bit shift) or silently
   corrupt data before the frontend/codec hardening; they are pinned so
   the fixes cannot regress even if the random generators drift. *)

open Pypm
module Fz = Pypm_fuzz.Fuzz
module Gen = Pypm_fuzz.Gen
module Srng = Pypm_fuzz.Srng
module Alpha = Pypm_fuzz.Alpha

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let lex_error_of src =
  match Lexer.tokenize src with
  | exception Lexer.Lex_error (pos, msg) -> Some (pos, msg)
  | exception e ->
      Alcotest.failf "lexing %S raised %s, not Lex_error" src
        (Printexc.to_string e)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lexer totality                                                      *)
(* ------------------------------------------------------------------ *)

(* Used to escape as [Failure "int_of_string"]. *)
let test_oversized_int_literal () =
  match lex_error_of "x = 99999999999999999999999999999" with
  | Some (pos, msg) ->
      checki "error column points at the literal" 5 pos.Lexer.col;
      checkb "message names the literal" true
        (String.length msg > 0
        && String.sub msg 0 (min 7 (String.length msg)) = "integer")
  | None -> Alcotest.fail "oversized int literal lexed successfully"

let test_oversized_int_in_parse () =
  (* Through the full frontend: a positioned error value, not an exception. *)
  match Surface.parse "op O(99999999999999999999999999999, 1);" with
  | Error (Surface.Syntax (_, _)) -> ()
  | Error (Surface.Elab _) -> Alcotest.fail "expected a syntax error"
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_unsupported_escape () =
  match lex_error_of {|"bad \q escape"|} with
  | Some _ -> ()
  | None -> Alcotest.fail "\\q escape lexed successfully"

let test_unterminated_string () =
  List.iter
    (fun src ->
      match lex_error_of src with
      | Some _ -> ()
      | None -> Alcotest.failf "%S lexed successfully" src)
    [ {|"unclosed|}; {|"ends in backslash\|}; "\"newline\ninside\"" ]

(* ------------------------------------------------------------------ *)
(* String-literal escapes                                              *)
(* ------------------------------------------------------------------ *)

let lex_string_exn lit =
  match Array.to_list (Lexer.tokenize lit) with
  | [ { Lexer.tok = Lexer.STRING s; _ }; { Lexer.tok = Lexer.EOF; _ } ] -> s
  | _ -> Alcotest.failf "%S did not lex to a single string literal" lit

let test_escape_roundtrip () =
  List.iter
    (fun s ->
      checks "quote_string roundtrip" s (lex_string_exn (Lexer.quote_string s));
      checks "pp_string_lit roundtrip" s
        (lex_string_exn (Format.asprintf "%a" Ast.pp_string_lit s)))
    [ "a\"b\\c"; "two\nlines"; "\\"; "\""; ""; "plain"; "tab\there" ]

(* The class string of an op declaration survives print-and-reparse even
   with embedded quotes, backslashes and newlines. *)
let test_opclass_string_roundtrip () =
  let ast =
    {
      Ast.empty_program with
      Ast.ops =
        [
          {
            Ast.od_name = "O";
            od_arity = 1;
            od_output_arity = 1;
            od_class = "quoted \"cls\"\\with\nnoise";
          };
        ];
    }
  in
  let src = Format.asprintf "%a" Ast.pp_program ast in
  match Surface.parse src with
  | Error e -> Alcotest.failf "reparse failed: %a" Surface.pp_error e
  | Ok ast2 -> (
      match ast2.Ast.ops with
      | [ od ] -> checks "class string" "quoted \"cls\"\\with\nnoise" od.Ast.od_class
      | _ -> Alcotest.fail "expected one op")

(* ------------------------------------------------------------------ *)
(* The [copying] clause of printed rules                               *)
(* ------------------------------------------------------------------ *)

let test_pp_rule_copying_roundtrip () =
  let ast =
    {
      Ast.ops =
        [ { Ast.od_name = "O"; od_arity = 1; od_output_arity = 1; od_class = "c" } ];
      patterns =
        [
          {
            Ast.pd_name = "Q";
            pd_params = [ "x" ];
            pd_stmts = [];
            pd_return = Ast.Eapp ("O", [ Ast.Evar "x" ]);
          };
        ];
      rules =
        [
          {
            Ast.rd_name = "R";
            rd_for = "Q";
            rd_params = [ "x" ];
            rd_asserts = [];
            rd_branches = [ { Ast.br_guard = None; br_return = Ast.Evar "x" } ];
            rd_copy_attrs_from = Some "x";
          };
        ];
    }
  in
  let src = Format.asprintf "%a" Ast.pp_program ast in
  match Surface.parse src with
  | Error e -> Alcotest.failf "reparse failed: %a" Surface.pp_error e
  | Ok ast2 -> (
      match ast2.Ast.rules with
      | [ rd ] ->
          checkb "copying clause preserved" true
            (rd.Ast.rd_copy_attrs_from = Some "x")
      | _ -> Alcotest.fail "expected one rule")

(* ------------------------------------------------------------------ *)
(* Codec hardening                                                     *)
(* ------------------------------------------------------------------ *)

let one_rule_program v =
  let sg = Signature.create () in
  ignore (Signature.declare sg ~arity:1 "g");
  Program.make ~sg
    [
      {
        Program.pname = "P";
        pattern = Pattern.app "g" [ Pattern.var "x" ];
        rules = [ Rule.make ~name:"r" ~pattern:"P" (Rule.Rlit v) ];
      };
    ]

(* Out-of-range literals used to encode to garbage varints (or loop);
   now they are rejected up front. *)
let test_codec_rejects_unencodable_literals () =
  List.iter
    (fun v ->
      match Codec.encode (one_rule_program v) with
      | exception Codec.Encode_error _ -> ()
      | exception e ->
          Alcotest.failf "encoding %g raised %s, not Encode_error" v
            (Printexc.to_string e)
      | _ -> Alcotest.failf "encoding literal %g succeeded" v)
    [ Float.nan; Float.infinity; Float.neg_infinity; 1e300; -1e300 ]

let test_codec_accepts_millifloats () =
  List.iter
    (fun v ->
      match Codec.decode (Codec.encode (one_rule_program v)) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "millifloat %g failed: %s" v e)
    [ 0.; 1.5; -2.125; 0.001; -4000.; 3.141 ]

(* [put_signed] used to hit [Invalid_argument] on [min_int] (the sign bit
   overflowed the zigzag shift); the primitives must be total. *)
let test_wire_zigzag_total () =
  List.iter
    (fun n ->
      let buf = Buffer.create 16 in
      Codec.Wire.put_signed buf n;
      let c = Codec.Wire.cursor (Buffer.contents buf) in
      checki (Printf.sprintf "zigzag %d" n) n (Codec.Wire.get_signed c))
    [ 0; 1; -1; 63; 64; -64; -65; max_int; min_int; max_int - 1; min_int + 1;
      0x7FFFFFFF; -0x80000000 ]
  [@@ocamlformat "disable"]

let test_wire_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 16 in
      Codec.Wire.put_varint buf n;
      let c = Codec.Wire.cursor (Buffer.contents buf) in
      checki (Printf.sprintf "varint %d" n) n (Codec.Wire.get_varint c))
    [ 0; 1; 127; 128; 16383; 16384; max_int ]

(* ------------------------------------------------------------------ *)
(* Srng                                                                *)
(* ------------------------------------------------------------------ *)

let test_srng_deterministic () =
  let stream seed =
    let r = Srng.create ~seed in
    List.init 16 (fun _ -> Srng.next64 r)
  in
  checkb "same seed, same stream" true (stream 7 = stream 7);
  checkb "different seeds, different streams" true (stream 1 <> stream 2)

let test_srng_split_decorrelates () =
  let r = Srng.create ~seed:11 in
  let child = Srng.split r in
  let a = List.init 16 (fun _ -> Srng.next64 r) in
  let b = List.init 16 (fun _ -> Srng.next64 child) in
  checkb "parent and child streams differ" true (a <> b)

let test_srng_bounds () =
  let r = Srng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Srng.int r 7 in
    checkb "int in range" true (v >= 0 && v < 7);
    let w = Srng.range r (-3) 3 in
    checkb "range inclusive" true (w >= -3 && w <= 3)
  done

(* ------------------------------------------------------------------ *)
(* Alpha equivalence                                                   *)
(* ------------------------------------------------------------------ *)

let test_alpha () =
  let open Pattern in
  checkb "bound rename" true
    (Alpha.equal (exists "x" (app "g" [ var "x" ]))
       (exists "y" (app "g" [ var "y" ])));
  checkb "free variables must match exactly" false
    (Alpha.equal (app "g" [ var "x" ]) (app "g" [ var "y" ]));
  checkb "free must not collide with bound" false
    (Alpha.equal
       (exists "x" (app "f" [ var "x"; var "y" ]))
       (exists "y" (app "f" [ var "y"; var "y" ])));
  checkb "mu formals rename" true
    (Alpha.equal
       (mu "P" ~formals:[ "x" ] ~actuals:[ "z" ]
          (alt (app "g" [ call "P" [ "x" ] ]) (app "g" [ var "x" ])))
       (mu "Q" ~formals:[ "w" ] ~actuals:[ "z" ]
          (alt (app "g" [ call "Q" [ "w" ] ]) (app "g" [ var "w" ]))));
  checkb "mu actuals are free" false
    (Alpha.equal
       (mu "P" ~formals:[ "x" ] ~actuals:[ "a" ] (app "g" [ var "x" ]))
       (mu "P" ~formals:[ "x" ] ~actuals:[ "b" ] (app "g" [ var "x" ])));
  checkb "exists_f rename with guards" true
    (Alpha.equal
       (exists_f "F"
          (Guarded (fapp "F" [ var "x" ], Guard.Eq (Guard.Fvar_attr ("F", "arity"), Guard.Const 1))))
       (exists_f "G"
          (Guarded (fapp "G" [ var "x" ], Guard.Eq (Guard.Fvar_attr ("G", "arity"), Guard.Const 1)))))
  [@@ocamlformat "disable"]

(* Elaborating the same source twice yields alpha-equivalent (but not
   syntactically equal) patterns — the situation Alpha exists for. *)
let test_alpha_absorbs_fresh_names () =
  let src =
    "op O(x) class \"c\";\n\
     pattern Q(p) { l = var(); l <= O(p); return O(l); }\n"
  in
  let load () =
    match Surface.load ~sg:(Signature.create ()) src with
    | Ok prog -> (List.hd prog.Program.entries).Program.pattern
    | Error e -> Alcotest.failf "load failed: %a" Surface.pp_error e
  in
  let p1 = load () and p2 = load () in
  checkb "alpha-equivalent" true (Alpha.equal p1 p2)

(* ------------------------------------------------------------------ *)
(* Sharded-pass determinism                                            *)
(* ------------------------------------------------------------------ *)

(* Caught by parallel-pass-agreement (replay: --seed 120 --budget 1).
   The generated graph holds two structurally equal [Exp] nodes; the
   sharded arbiter memoized only the matched node's subtree into its
   term view, so [Term_view.node_of] resolved the rule-variable binding
   to a different duplicate than the sequential scan registered first,
   and the replacement spliced in an unshared node: same provenance,
   different final fingerprint. The arbiter now replays the sequential
   scanner's registration order (every surviving candidate, in worklist
   order); this pins the exact recipe that exposed the gap. *)
let test_sharded_duplicate_node_resolution () =
  let recipe = { Gen.gr_seed = 672008; gr_nodes = 19; gr_pats = 3 } in
  let run domains =
    let _env, g, prog = Gen.build recipe in
    let stats = Pass.run ~engine:Pass.Index ~domains prog g in
    let prov =
      List.map
        (fun (s : Obs.Provenance.step) ->
          ( s.Obs.Provenance.seq,
            s.Obs.Provenance.pattern,
            s.Obs.Provenance.rule,
            s.Obs.Provenance.matched_root,
            s.Obs.Provenance.replacement_root ))
        (Pass.provenance stats)
    in
    (stats.Pass.total_rewrites, Fz.fingerprint g, prov)
  in
  let rw1, fp1, prov1 = run 1 in
  List.iter
    (fun domains ->
      let rw, fp, prov = run domains in
      checki (Printf.sprintf "rewrites at domains=%d" domains) rw1 rw;
      checks (Printf.sprintf "fingerprint at domains=%d" domains) fp1 fp;
      checkb (Printf.sprintf "provenance at domains=%d" domains) true
        (prov = prov1))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Fingerprint stability                                               *)
(* ------------------------------------------------------------------ *)

(* [Fz.fingerprint] sorts each node's attributes so the hash is a function
   of the graph, not of attribute insertion order. The sort used the
   polymorphic [compare] on [(string * int)] pairs — correct today only
   because the representation happens to order that way; it now uses a
   typed comparator. Pin the observable contract: two graphs differing
   only in attr insertion order fingerprint identically. *)
let test_fingerprint_attr_order () =
  let build attrs =
    let e = Std_ops.make () in
    let g = Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer () in
    let x = Graph.input g ~name:"x" (Ty.make Dtype.F32 [ 2; 2 ]) in
    let n = Graph.add g Std_ops.relu ~attrs [ x ] in
    Graph.set_outputs g [ n ];
    Fz.fingerprint g
  in
  checks "attr insertion order is invisible"
    (build [ ("alpha", 1); ("beta", 2); ("gamma", 3) ])
    (build [ ("gamma", 3); ("beta", 2); ("alpha", 1) ]);
  checkb "attr values still distinguish" true
    (build [ ("alpha", 1) ] <> build [ ("alpha", 2) ])

(* ------------------------------------------------------------------ *)
(* Fuzzer smoke                                                        *)
(* ------------------------------------------------------------------ *)

(* A tiny deterministic run of every property. Any failure prints the
   minimized counterexample and the replay command line. *)
let test_fuzz_all_props_smoke () =
  let report = Fz.run ~seed:0 ~budget:330 () in
  if not (Fz.ok report) then
    Alcotest.failf "fuzz smoke failed:@.%a" Fz.pp_report report;
  checki "all properties ran" (List.length Fz.all_prop_names)
    (List.length report.Fz.r_props)

(* The expensive differential property on a few more workloads. *)
let test_fuzz_engines_smoke () =
  let report = Fz.run ~props:[ "engines-agree" ] ~seed:100 ~budget:6 () in
  if not (Fz.ok report) then
    Alcotest.failf "engines-agree failed:@.%a" Fz.pp_report report

let test_fuzz_unknown_prop () =
  match Fz.run ~props:[ "no-such-property" ] ~seed:0 ~budget:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown property name was accepted"

let () =
  Alcotest.run "fuzz_regressions"
    [
      ( "lexer",
        [
          Alcotest.test_case "oversized int literal" `Quick
            test_oversized_int_literal;
          Alcotest.test_case "oversized int through parse" `Quick
            test_oversized_int_in_parse;
          Alcotest.test_case "unsupported escape" `Quick
            test_unsupported_escape;
          Alcotest.test_case "unterminated strings" `Quick
            test_unterminated_string;
        ] );
      ( "strings",
        [
          Alcotest.test_case "escape roundtrips" `Quick test_escape_roundtrip;
          Alcotest.test_case "op class string" `Quick
            test_opclass_string_roundtrip;
          Alcotest.test_case "rule copying clause" `Quick
            test_pp_rule_copying_roundtrip;
        ] );
      ( "codec",
        [
          Alcotest.test_case "unencodable literals rejected" `Quick
            test_codec_rejects_unencodable_literals;
          Alcotest.test_case "millifloats accepted" `Quick
            test_codec_accepts_millifloats;
          Alcotest.test_case "zigzag total" `Quick test_wire_zigzag_total;
          Alcotest.test_case "varint roundtrip" `Quick
            test_wire_varint_roundtrip;
        ] );
      ( "srng",
        [
          Alcotest.test_case "deterministic" `Quick test_srng_deterministic;
          Alcotest.test_case "split decorrelates" `Quick
            test_srng_split_decorrelates;
          Alcotest.test_case "bounds" `Quick test_srng_bounds;
        ] );
      ( "alpha",
        [
          Alcotest.test_case "unit cases" `Quick test_alpha;
          Alcotest.test_case "absorbs elaboration freshness" `Quick
            test_alpha_absorbs_fresh_names;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "duplicate-node resolution" `Quick
            test_sharded_duplicate_node_resolution;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "attr order invisible" `Quick
            test_fingerprint_attr_order;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "all properties smoke" `Quick
            test_fuzz_all_props_smoke;
          Alcotest.test_case "engines differential smoke" `Quick
            test_fuzz_engines_smoke;
          Alcotest.test_case "unknown property" `Quick test_fuzz_unknown_prop;
        ] );
    ]
