(* Tests for term-level rewriting: strategies, normal forms, and
   cross-checks against the graph pass and equality saturation. *)

open Pypm
module P = Pattern
module F = Pypm_testutil.Fixtures

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_term name expected t =
  Alcotest.(check string) name expected (Term.to_string t)

(* test signature from the shared fixtures: f/2, g/1, a b c *)
let sg = F.sg
let interp = F.interp
let a = F.a
let b = F.b
let g1 = F.g1
let f2 = F.f2

let entry ?(rules = []) name pattern = { Program.pname = name; pattern; rules }

let rw_exn ~name lhs rhs =
  match Saturate.rw ~name lhs rhs with Ok r -> r | Error e -> failwith e

let rule name ~pattern ?guard rhs = Rule.make ?guard ~name ~pattern rhs

(* gg(x) -> x *)
let gg_program =
  Program.make ~sg
    [
      entry "GG"
        (P.app "g" [ P.app "g" [ P.var "x" ] ])
        ~rules:[ rule "gg" ~pattern:"GG" (Rule.Rvar "x") ];
    ]

(* the ordering-trap pair from the e-graph tests:
   R1: f(x, b) -> g(x);  R2: g(f(x, b)) -> x *)
let trap_program =
  Program.make ~sg
    [
      entry "R1"
        (P.app "f" [ P.var "x"; P.const "b" ])
        ~rules:[ rule "r1" ~pattern:"R1" (Rule.Rapp ("g", [ Rule.Rvar "x" ])) ];
      entry "R2"
        (P.app "g" [ P.app "f" [ P.var "x"; P.const "b" ] ])
        ~rules:[ rule "r2" ~pattern:"R2" (Rule.Rvar "x") ];
    ]

let rec tower n = if n = 0 then a else g1 (tower (n - 1))

(* ------------------------------------------------------------------ *)

let test_instantiate () =
  let theta = Subst.of_list [ ("x", a) ] in
  let phi = Fsubst.of_list [ ("F", "g") ] in
  (match
     Term_rewrite.instantiate theta phi
       (Rule.Rfapp ("F", [ Rule.Rapp ("f", [ Rule.Rvar "x"; Rule.Rlit 2.0 ]) ]))
   with
  | Ok t ->
      check_term "built" "g(f(a, lit_f32_2000))" t
  | Error e -> Alcotest.fail e);
  match Term_rewrite.instantiate Subst.empty Fsubst.empty (Rule.Rvar "zz") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound accepted"

let test_normalize_tower () =
  let t, stats = Term_rewrite.normalize ~interp gg_program (tower 6) in
  check_term "even tower" "a" t;
  checkb "normal form" true stats.Term_rewrite.normal_form;
  checki "three steps" 3 stats.Term_rewrite.steps;
  let t', _ = Term_rewrite.normalize ~interp gg_program (tower 5) in
  check_term "odd tower" "g(a)" t'

let test_step_none_on_normal_form () =
  checkb "no redex" true (Term_rewrite.step ~interp gg_program a = None)

let test_strategies_differ_on_the_trap () =
  let t = g1 (f2 a b) in
  (* innermost: R1 fires inside first, R2's redex is destroyed *)
  let inner, _ =
    Term_rewrite.normalize ~interp ~strategy:Term_rewrite.Innermost
      trap_program t
  in
  check_term "innermost gets stuck at g(g(a))" "g(g(a))" inner;
  (* outermost: the root redex belongs to... R1 does not match at the root
     (head g); the first root match is R2, the good one *)
  let outer, _ =
    Term_rewrite.normalize ~interp ~strategy:Term_rewrite.Outermost
      trap_program t
  in
  check_term "outermost finds a" "a" outer

let test_saturation_dominates_both_strategies () =
  (* equality saturation finds the best form regardless of strategy *)
  let t = g1 (f2 a b) in
  let rules =
    [
      rw_exn ~name:"r1"
        (P.app "f" [ P.var "x"; P.const "b" ])
        (Saturate.Tapp ("g", [ Saturate.Tvar "x" ]));
      rw_exn ~name:"r2"
        (P.app "g" [ P.app "f" [ P.var "x"; P.const "b" ] ])
        (Saturate.Tvar "x");
    ]
  in
  let best, _ = Saturate.simplify ~rules t in
  let inner, _ = Term_rewrite.normalize ~interp trap_program t in
  let outer, _ =
    Term_rewrite.normalize ~interp ~strategy:Term_rewrite.Outermost
      trap_program t
  in
  checkb "saturation <= innermost" true (Term.size best <= Term.size inner);
  checkb "saturation <= outermost" true (Term.size best <= Term.size outer)

(* on the confluent tower rule, all three engines agree; checked on random
   terms *)
let prop_confluent_rules_agree =
  let gg_rw =
    rw_exn ~name:"gg"
      (P.app "g" [ P.app "g" [ P.var "x" ] ])
      (Saturate.Tvar "x")
  in
  F.qtest ~count:300 "term rewriting agrees with saturation (confluent rules)"
    F.Gen.term Term.to_string (fun t ->
      let inner, s1 = Term_rewrite.normalize ~interp gg_program t in
      let outer, s2 =
        Term_rewrite.normalize ~interp ~strategy:Term_rewrite.Outermost
          gg_program t
      in
      let best, _ = Saturate.simplify ~rules:[ gg_rw ] t in
      s1.Term_rewrite.normal_form && s2.Term_rewrite.normal_form
      && Term.equal inner outer && Term.equal inner best)

(* the graph pass and the term rewriter compute the same normal form on
   tree-shaped graphs *)
let test_agrees_with_graph_pass () =
  let env = Std_ops.make () in
  let g = Graph.create ~sg:env.Std_ops.sg ~infer:env.Std_ops.infer () in
  let x = Graph.input g ~name:"x" (Ty.make Dtype.F32 [ 4 ]) in
  let top =
    Graph.add g Std_ops.relu
      [ Graph.add g Std_ops.relu [ Graph.add g Std_ops.relu [ x ] ] ]
  in
  Graph.set_outputs g [ top ];
  let program = Program.make ~sg:env.Std_ops.sg [ Corpus.relu_chain ] in
  (* term side: rewrite the term view of the same graph *)
  let view = Term_view.create g in
  let t = Term_view.term_of view top in
  let t', _ = Term_rewrite.normalize ~interp:(Term_view.interp view) program t in
  (* graph side *)
  ignore (Pass.run program g);
  let view' = Term_view.create g in
  let t_graph = Term_view.term_of view' (List.hd (Graph.outputs g)) in
  checkb "same normal form" true (Term.equal t' t_graph)

let test_max_steps () =
  (* a looping rule: g(x) -> g(g(x)) diverges on terms *)
  let looping =
    Program.make ~sg
      [
        entry "L"
          (P.app "g" [ P.var "x" ])
          ~rules:
            [
              rule "loop" ~pattern:"L"
                (Rule.Rapp ("g", [ Rule.Rapp ("g", [ Rule.Rvar "x" ]) ]));
            ];
      ]
  in
  let _, stats = Term_rewrite.normalize ~interp ~max_steps:7 looping (g1 a) in
  checkb "not a normal form" true (not stats.Term_rewrite.normal_form);
  checki "stopped at the budget" 7 stats.Term_rewrite.steps

let () =
  Alcotest.run "term-rewrite"
    [
      ( "basics",
        [
          Alcotest.test_case "instantiate" `Quick test_instantiate;
          Alcotest.test_case "normalize tower" `Quick test_normalize_tower;
          Alcotest.test_case "normal form detected" `Quick
            test_step_none_on_normal_form;
          Alcotest.test_case "max steps" `Quick test_max_steps;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "ordering trap" `Quick
            test_strategies_differ_on_the_trap;
          Alcotest.test_case "saturation dominates" `Quick
            test_saturation_dominates_both_strategies;
          prop_confluent_rules_agree;
        ] );
      ( "cross-checks",
        [
          Alcotest.test_case "agrees with the graph pass" `Quick
            test_agrees_with_graph_pass;
        ] );
    ]
